package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafety flags the concurrency hazards the serving layer's
// lock/atomic discipline forbids.
//
// Three sub-checks, one contract: the engine's hot structures mix
// mutexes (LRU shards, singleflight table), atomics (counters, the NFA
// memo pointer) and channels (admission, call completion), and each
// primitive is only sound when used one way.
//
//   - Mixed access: a field accessed through sync/atomic anywhere in
//     the package must be accessed through sync/atomic everywhere; and
//     a field of an atomic.* type must only be used as a method-call
//     receiver (or have its address taken) — copying an atomic value
//     copies its guts without its guarantees.
//   - Lock copies: a value containing a sync.Mutex/RWMutex (or an
//     atomic.* value) must not be copied — by-value parameters,
//     results, assignments from a dereference/selector, or range value
//     variables.
//   - Ops under lock: while a mutex is held, no channel send, receive
//     or select, and no budget.Meter charge — the meter consults the
//     context and can block in hooks, and a channel op under an LRU
//     shard lock turns a cache probe into a deadlock candidate.
//
// Intentional exceptions are annotated `//locksafety:ok <why this is
// safe>`.
var LockSafety = &Analyzer{
	Name:      "locksafety",
	Doc:       "flag mixed atomic/plain access, copied locks, and channel/charge ops under a held mutex",
	Directive: "locksafety:ok",
	Run:       runLockSafety,
}

func runLockSafety(pass *Pass) error {
	checkMixedAtomics(pass)
	for _, file := range pass.Files {
		checkLockCopies(pass, file)
		checkOpsUnderLock(pass, file)
	}
	return nil
}

// ---- sub-check 1: mixed atomic / plain access ----

// checkMixedAtomics walks the whole package twice: first collecting
// every field passed by address to a sync/atomic function, then
// reporting every other (plain) use of those fields. It also reports
// uses of atomic.*-typed fields that are neither method-call receivers
// nor address-taken (i.e. value copies).
func checkMixedAtomics(pass *Pass) {
	atomicFields := map[types.Object]bool{}
	atomicUses := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObject(pass, sel); obj != nil {
					atomicFields[obj] = true
					atomicUses[sel] = true
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		parents := parentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil {
				return true
			}
			if atomicFields[obj] && !atomicUses[sel] {
				pass.Reportf(sel.Pos(),
					"field %s is accessed with sync/atomic elsewhere in this package but plainly here; use the atomic accessors everywhere or annotate //locksafety:ok with a reason",
					sel.Sel.Name)
				return true
			}
			if isAtomicValueType(obj.Type()) && !isReceiverOrAddressed(parents, sel) {
				pass.Reportf(sel.Pos(),
					"atomic-typed field %s is copied or read as a value; atomics must be used through their methods — or annotate //locksafety:ok with a reason",
					sel.Sel.Name)
			}
			return true
		})
	}
}

// isAtomicPkgCall reports whether call invokes a function of package
// sync/atomic (atomic.LoadInt64, atomic.StoreInt64, ...).
func isAtomicPkgCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldObject returns the field object of a struct-field selector, or
// nil when sel is not a field access.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) types.Object {
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj()
}

// isAtomicValueType reports whether t is one of sync/atomic's value
// types (Int64, Bool, Pointer[T], ...).
func isAtomicValueType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Value", "Pointer":
		return true
	}
	return false
}

// isReceiverOrAddressed reports whether sel is used as a method-call
// receiver (x.f.Load()) or has its address taken (&x.f) — the two
// legitimate ways to touch an atomic-typed field.
func isReceiverOrAddressed(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parents[sel].(type) {
	case *ast.SelectorExpr:
		if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p && p.X == sel {
			return true
		}
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// parentMap builds a child → parent index for one file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// ---- sub-check 2: lock values copied ----

// checkLockCopies reports by-value parameters/results, assignments and
// range variables whose type contains a mutex or an atomic value.
func checkLockCopies(pass *Pass, file *ast.File) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok || !containsLock(tv.Type, 0) {
				continue
			}
			pass.Reportf(field.Pos(),
				"%s passes %s by value, copying the lock it contains; use a pointer or annotate //locksafety:ok with a reason",
				what, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				switch rhs.(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
				default:
					continue // composite literals, calls etc. construct, not copy
				}
				tv, ok := pass.Info.Types[rhs]
				if !ok || !containsLock(tv.Type, 0) {
					continue
				}
				if isAtomicValueType(tv.Type) {
					continue // the mixed-atomic check reports these
				}
				pass.Reportf(rhs.Pos(),
					"assignment copies %s which contains a lock; use a pointer or annotate //locksafety:ok with a reason",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			}
		case *ast.RangeStmt:
			id, ok := n.Value.(*ast.Ident)
			if !ok {
				return true
			}
			// Range value vars are definitions, so their type lives in
			// Defs (Uses/Types cover the `=` form via the same object).
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil || !containsLock(obj.Type(), 0) {
				return true
			}
			pass.Reportf(n.Value.Pos(),
				"range value copies %s which contains a lock; range over indices or pointers, or annotate //locksafety:ok with a reason",
				types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)))
		}
		return true
	})
}

// containsLock reports whether t (by value) contains a sync lock or an
// atomic value, looking through named types and struct fields to a
// small depth.
func containsLock(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return true
				}
			case "sync/atomic":
				if isAtomicValueType(named) {
					return true
				}
			}
		}
		t = named.Underlying()
	}
	if st, ok := t.(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if containsLock(st.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// ---- sub-check 3: channel ops / budget charges under a held mutex ----

// checkOpsUnderLock runs a linear lock-state walk over every function
// body: Lock()/RLock() opens a region, Unlock()/RUnlock() closes it, a
// deferred Unlock keeps it open to function end (that is the point of
// the idiom), and while a region is open no statement may perform a
// channel operation or charge a budget.Meter.
func checkOpsUnderLock(pass *Pass, file *ast.File) {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch f := n.(type) {
		case *ast.FuncDecl:
			if f.Body != nil {
				bodies = append(bodies, f.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, f.Body)
		}
		return true
	})
	for _, body := range bodies {
		walkLockStmts(pass, body.List, false)
	}
}

type lockOp int

const (
	lockNone lockOp = iota
	lockAcquire
	lockRelease
)

// walkLockStmts interprets a statement list tracking whether a mutex is
// held, reporting forbidden operations inside held regions, and
// returns the lock state at the list's end. Branch merges are
// conservative toward "locked": a branch that terminates (return,
// branch statement, panic) does not propagate its state.
func walkLockStmts(pass *Pass, stmts []ast.Stmt, locked bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch lockKind(pass, call) {
				case lockAcquire:
					locked = true
					continue
				case lockRelease:
					locked = false
					continue
				}
			}
			if locked {
				scanLockedViolations(pass, s)
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() pins the region open to function end —
			// everything after it is analyzed as locked, which is the
			// idiom's meaning. Other deferred calls registered under the
			// lock run before that Unlock, so they are scanned too.
			if lockKind(pass, s.Call) == lockNone && locked {
				scanLockedViolations(pass, s.Call)
			}
		case *ast.BlockStmt:
			locked = walkLockStmts(pass, s.List, locked)
		case *ast.IfStmt:
			if locked {
				scanLockedViolations(pass, s.Init, s.Cond)
			}
			bodyOut := walkLockStmts(pass, s.Body.List, locked)
			if terminates(s.Body.List) {
				bodyOut = false
			}
			elseOut := locked
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOut = walkLockStmts(pass, e.List, locked)
				if terminates(e.List) {
					elseOut = false
				}
			case *ast.IfStmt:
				elseOut = walkLockStmts(pass, []ast.Stmt{e}, locked)
			}
			locked = bodyOut || elseOut
		case *ast.ForStmt:
			if locked {
				scanLockedViolations(pass, s.Init, s.Cond, s.Post)
			}
			walkLockStmts(pass, s.Body.List, locked)
		case *ast.RangeStmt:
			if locked {
				scanLockedViolations(pass, s.X)
			}
			walkLockStmts(pass, s.Body.List, locked)
		case *ast.SwitchStmt:
			if locked {
				scanLockedViolations(pass, s.Init, s.Tag)
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkLockStmts(pass, cc.Body, locked)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkLockStmts(pass, cc.Body, locked)
				}
			}
		case *ast.SelectStmt:
			if locked {
				pass.Reportf(s.Pos(),
					"select (channel operation) while holding a mutex; release the lock first or annotate //locksafety:ok with a reason")
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					walkLockStmts(pass, cc.Body, locked)
				}
			}
		case *ast.GoStmt:
			// The goroutine body runs on its own stack without this lock.
		default:
			if locked {
				scanLockedViolations(pass, stmt)
			}
		}
	}
	return locked
}

// lockKind classifies a call as mutex acquire, release, or neither.
func lockKind(pass *Pass, call *ast.CallExpr) lockOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return lockNone
	}
	recv := receiverType(pass, sel)
	if recv == nil || (!isNamed(recv, "sync", "Mutex") && !isNamed(recv, "sync", "RWMutex")) {
		return lockNone
	}
	return op
}

// terminates reports whether a statement list ends by leaving the
// enclosing flow (return, break/continue/goto, panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scanLockedViolations reports channel operations and budget charges
// inside the given nodes, without descending into function literals
// (their bodies run on their own goroutine or after the region).
func scanLockedViolations(pass *Pass, nodes ...ast.Node) {
	for _, node := range nodes {
		if node == nil {
			continue
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				pass.Reportf(n.Pos(),
					"channel send while holding a mutex; release the lock first or annotate //locksafety:ok with a reason")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(),
						"channel receive while holding a mutex; release the lock first or annotate //locksafety:ok with a reason")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select (channel operation) while holding a mutex; release the lock first or annotate //locksafety:ok with a reason")
				return false
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if recv := receiverType(pass, sel); recv != nil && isNamed(recv, "budget", "Meter") {
						pass.Reportf(n.Pos(),
							"budget.Meter charge while holding a mutex; the meter can consult the context and block — charge outside the lock or annotate //locksafety:ok with a reason")
					}
				}
			}
			return true
		})
	}
}
