package analysis

import (
	"go/ast"
	"go/types"
)

// BudgetCheck flags state-materializing loops in the hot-path packages
// that never charge the budget meter.
//
// The constructions this repository reproduces are doubly exponential
// by theorem (Theorems 5 and 8 of the paper), so the resource governor
// (internal/budget) is the only thing standing between an adversarial
// input and an unbounded allocation. Its contract is simple: every
// loop that materializes automaton states or transitions — calls to
// AddState, AddStates, AddTransition, AddEpsilon, SetTransition on an
// automata.NFA/DFA, or growth of a subset interner via
// intern/internClone — must charge a budget.Meter (AddStates,
// AddTransitions, or at least Check) somewhere on its path. The
// analyzer inspects the packages named automata, core and rpq and
// reports every outermost loop that contains a materializing call but
// neither touches a *budget.Meter nor delegates by passing a Meter or
// a context.Context to a callee (the callee then owns the charge).
//
// Loops whose trip count is provably bounded by the INPUT size — copy
// loops over an automaton that already paid for its states, say — are
// annotated `//budget:exempt <why the loop cannot amplify>`, which
// both suppresses the diagnostic and documents the proof obligation.
var BudgetCheck = &Analyzer{
	Name:      "budgetcheck",
	Doc:       "flag state-materializing loops in automata/core/rpq that never charge the budget meter",
	Directive: "budget:exempt",
	Run:       runBudgetCheck,
}

// budgetCheckPkgs names the hot-path packages under the metering
// contract (by package name, so fixtures under testdata match too).
var budgetCheckPkgs = map[string]bool{
	"automata": true,
	"core":     true,
	"rpq":      true,
}

// materializerNames are the automata mutators that grow state or
// transition storage.
var materializerNames = map[string]bool{
	"AddState":      true,
	"AddStates":     true,
	"AddTransition": true,
	"AddEpsilon":    true,
	"SetTransition": true,
}

// internerNames are the interner probes that can grow the subset table.
var internerNames = map[string]bool{
	"intern":      true,
	"internClone": true,
}

func runBudgetCheck(pass *Pass) error {
	if !budgetCheckPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			// This is an outermost loop (Inspect is pruned below nested
			// ones): judge its entire subtree — a charge anywhere in the
			// body covers every materialization under it.
			if containsMaterializer(pass, body) && !chargesOrDelegates(pass, body) {
				pass.Reportf(n.Pos(),
					"loop materializes automaton state without charging the budget meter; call meter.AddStates/AddTransitions/Check (or pass the ctx/meter to a callee) or annotate //budget:exempt with a reason")
			}
			return false // inner loops are covered by this judgement
		})
	}
	return nil
}

// containsMaterializer reports whether the subtree contains a call that
// grows automaton or interner storage.
func containsMaterializer(pass *Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		name := sel.Sel.Name
		if !materializerNames[name] && !internerNames[name] {
			return !found
		}
		recv := receiverType(pass, sel)
		if recv == nil {
			return !found
		}
		switch {
		case materializerNames[name] && (isNamed(recv, "automata", "NFA") || isNamed(recv, "automata", "DFA")):
			found = true
		case internerNames[name] && isNamed(recv, "automata", "interner"):
			found = true
		}
		return !found
	})
	return found
}

// chargesOrDelegates reports whether the subtree touches the budget:
// calls a method on a *budget.Meter, passes a Meter to a callee, or
// passes a context.Context onward (the callee opens its own meter).
func chargesOrDelegates(pass *Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if recv := receiverType(pass, sel); recv != nil && isNamed(recv, "budget", "Meter") {
				found = true // meter.AddStates / AddTransitions / Check
			}
		}
		for _, arg := range call.Args {
			tv, ok := pass.Info.Types[arg]
			if !ok {
				continue
			}
			t := tv.Type
			if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if isNamed(t, "budget", "Meter") || isNamed(tv.Type, "context", "Context") {
				found = true
			}
		}
		return !found
	})
	return found
}

// receiverType returns the type of a selector's receiver expression
// with one level of pointer indirection removed, or nil when sel.X is
// not a value (e.g. a package qualifier).
func receiverType(pass *Pass, sel *ast.SelectorExpr) types.Type {
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t
}
