// Package analysistest exercises analyzers against fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture source
// lives under a GOPATH-like srcRoot, and every line expecting a
// diagnostic carries a `// want "regexp"` comment. The harness fails
// the test on diagnostics without a matching expectation and on
// expectations without a matching diagnostic, so fixtures pin both the
// positive and the negative behavior of an analyzer.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"regexrw/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+("(?:[^"\\]|\\.)*")`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package at srcRoot/pkgPath, applies the
// analyzer, and checks its diagnostics against the fixture's `// want`
// comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	pkg, err := analysis.LoadFixture(srcRoot, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	expects := collectExpectations(t, pkg)
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	for _, d := range diags {
		if e := match(expects, d.Pos.Filename, d.Pos.Line, d.Message); e != nil {
			e.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectExpectations scans the fixture's comments for `// want "re"`
// markers.
func collectExpectations(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %s: %v", m[1], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

func match(expects []*expectation, file string, line int, msg string) *expectation {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			return e
		}
	}
	return nil
}

// String renders an expectation for failure messages.
func (e *expectation) String() string { return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.re) }
