package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// InvariantCall flags exported constructors that skip the debug
// validation hooks.
//
// The automata and core packages carry Validate methods checking the
// structural invariants of NFAs, DFAs and Rewritings, and
// regexrwdebug-gated hooks (debugValidateNFA, debugValidateDFA,
// debugValidateRewriting) that constructors run on every value they
// hand out, so a debug build checks each automaton the moment it
// crosses a package boundary. A constructor added without the hook
// silently opts its outputs out of that net. The analyzer reports every
// exported function or method that returns a pointer to one of the
// validated types of its own package (*NFA, *DFA, *Rewriting) without
// calling a validation hook (or Validate directly) in its body.
//
// Thin wrappers that delegate to a validating implementation annotate
// the declaration `//invariantcall:checked <which callee validates>`.
var InvariantCall = &Analyzer{
	Name:      "invariantcall",
	Doc:       "flag exported automata/core constructors that skip the debug validation hooks",
	Directive: "invariantcall:checked",
	Run:       runInvariantCall,
}

// validatedTypes are the type names carrying Validate invariants.
var validatedTypes = map[string]bool{
	"NFA":       true,
	"DFA":       true,
	"Rewriting": true,
}

// validatorNames are the calls that satisfy the analyzer.
var validatorNames = map[string]bool{
	"debugValidateNFA":       true,
	"debugValidateDFA":       true,
	"debugValidateRewriting": true,
	"Validate":               true,
}

func runInvariantCall(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			retType := validatedReturn(pass, fn)
			if retType == "" {
				continue
			}
			if callsValidator(fn.Body) {
				continue
			}
			pass.Reportf(fn.Pos(),
				"exported %s returns *%s without a debug validation call; add a debugValidate hook before returning or annotate //invariantcall:checked naming the callee that validates",
				fn.Name.Name, retType)
		}
	}
	return nil
}

// validatedReturn returns the name of the validated type fn constructs
// — a pointer to a validated type defined in fn's own package — or ""
// when the analyzer has no claim on fn.
func validatedReturn(pass *Pass, fn *ast.FuncDecl) string {
	if fn.Type.Results == nil {
		return ""
	}
	for _, field := range fn.Type.Results.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		ptr, ok := types.Unalias(tv.Type).(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := types.Unalias(ptr.Elem()).(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if validatedTypes[obj.Name()] && obj.Pkg() == pass.Pkg {
			return obj.Name()
		}
	}
	return ""
}

// callsValidator reports whether body contains a call to one of the
// validation hooks or to a Validate method.
func callsValidator(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if validatorNames[name] || strings.HasPrefix(name, "debugValidate") {
			found = true
		}
		return !found
	})
	return found
}
