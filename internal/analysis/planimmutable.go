package analysis

import (
	"go/ast"
	"go/types"
)

// PlanImmutable flags writes to published-immutable types outside their
// constructor file.
//
// The serving engine's soundness argument is "compile once, share
// everywhere": a cached engine.Plan is handed to every request that
// hits its cache entry, with no lock, because every field is written
// during compile and only read afterwards. The same argument covers
// the automata memo tables (nfaMemo/memoBox), which are published
// through an atomic pointer and shared by concurrent pipelines. A
// field assignment added anywhere else in the package silently turns
// that shared artifact mutable — a data race the race detector only
// catches when a test happens to collide two goroutines on it.
//
// The analyzer pins the invariant structurally: every assignment (or
// ++/--) whose target is a field of a protected type must sit in the
// file that DECLARES the type — its constructor file. Intentional
// exceptions are annotated `//planimmutable:allow <why this write
// cannot race>`.
var PlanImmutable = &Analyzer{
	Name:      "planimmutable",
	Doc:       "flag writes to engine.Plan / automata memo fields outside their declaring file",
	Directive: "planimmutable:allow",
	Run:       runPlanImmutable,
}

// planImmutableTypes are the protected (package name, type name) pairs.
var planImmutableTypes = []struct{ pkg, typ string }{
	{"engine", "Plan"},
	{"automata", "nfaMemo"},
	{"automata", "memoBox"},
}

func runPlanImmutable(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					checkProtectedWrite(pass, file, lhs)
				}
			case *ast.IncDecStmt:
				checkProtectedWrite(pass, file, stmt.X)
			}
			return true
		})
	}
	return nil
}

// checkProtectedWrite reports lhs when it writes (possibly through an
// index or dereference) a field of a protected type from outside the
// file declaring that type.
func checkProtectedWrite(pass *Pass, file *ast.File, lhs ast.Expr) {
	// Peel the write target down to the selector being stored through:
	// p.f, (*p).f, m.closure[i], ...
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.ParenExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	recv := selection.Recv()
	if ptr, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok {
		return
	}
	for _, p := range planImmutableTypes {
		if !isNamed(recv, p.pkg, p.typ) {
			continue
		}
		declFile := pass.Fset.Position(named.Obj().Pos()).Filename
		writeFile := pass.Fset.Position(sel.Pos()).Filename
		if declFile == writeFile {
			return
		}
		pass.Reportf(sel.Pos(),
			"write to %s.%s field %s outside its declaring file %s; cached %s values are immutable after publish — construct in the declaring file or annotate //planimmutable:allow with a reason",
			p.pkg, p.typ, sel.Sel.Name, baseName(declFile), p.typ)
		return
	}
}

// baseName returns the last path element of a filename for diagnostics.
func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}
