package graph

import (
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/regex"
)

// TestCrossValidateEvalAgainstPathEnumeration: on small random graphs,
// Eval agrees with explicit enumeration of all paths up to a length
// bound (sound for queries whose minimal accepting word fits the
// bound; we pick bounded-language queries).
func TestCrossValidateEvalAgainstPathEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	exprs := []string{"x", "x·y", "x+y", "x·y?", "x·(y+x)", "x·x·x"}
	for trial := 0; trial < 20; trial++ {
		db := New(nil)
		labels := []string{"x", "y"}
		nodes := 4 + r.Intn(3)
		for i := 0; i < nodes; i++ {
			db.AddNode(string(rune('a' + i)))
		}
		for i := 0; i < 2*nodes; i++ {
			db.AddEdge(string(rune('a'+r.Intn(nodes))), labels[r.Intn(2)], string(rune('a'+r.Intn(nodes))))
		}
		expr := exprs[r.Intn(len(exprs))]
		nfa := mustNFA(t, expr)

		got := map[Pair]bool{}
		for _, p := range db.Eval(nfa) {
			got[p] = true
		}

		// Brute force: enumerate all paths of length ≤ 4 and test their
		// label word against the automaton.
		want := map[Pair]bool{}
		var walk func(start, cur NodeID, word []alphabet.Symbol)
		walk = func(start, cur NodeID, word []alphabet.Symbol) {
			// Translate db labels to automaton symbols by name.
			names := make([]string, len(word))
			for i, l := range word {
				names[i] = db.Labels().Name(l)
			}
			if nfa.AcceptsNames(names...) {
				want[Pair{start, cur}] = true
			}
			if len(word) == 4 {
				return
			}
			for _, e := range db.Out(cur) {
				walk(start, e.To, append(word, e.Label))
			}
		}
		for n := 0; n < db.NumNodes(); n++ {
			walk(NodeID(n), NodeID(n), nil)
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d (%s): Eval %d pairs, brute force %d", trial, expr, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("trial %d (%s): missing pair %v", trial, expr, p)
			}
		}
	}
}

func mustNFA(t *testing.T, expr string) *automata.NFA {
	t.Helper()
	n, err := regex.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return n.ToNFA(alphabet.New())
}
