package graph_test

import (
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/graph"
	"regexrw/internal/regex"
)

func ExampleDB_Eval() {
	db := graph.New(nil)
	db.AddEdge("root", "rome", "romePage")
	db.AddEdge("romePage", "restaurant", "carlotta")

	q := regex.MustParse("rome·restaurant").ToNFA(alphabet.New())
	for _, p := range db.PairNames(db.Eval(q)) {
		fmt.Println(p)
	}
	// Output:
	// root→carlotta
}
