package graph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/alphabet"
)

// randomDB builds a random multigraph with isolated nodes, duplicate
// edges and self loops — every shape the text codec must preserve.
func randomDB(r *rand.Rand) *DB {
	db := New(alphabet.New())
	nodes := r.Intn(12) + 1
	labels := []string{"a", "b", "c"}
	for i := 0; i < nodes; i++ {
		db.AddNode(fmt.Sprintf("n%d", i))
	}
	edges := r.Intn(30)
	for i := 0; i < edges; i++ {
		from := fmt.Sprintf("n%d", r.Intn(nodes))
		to := fmt.Sprintf("n%d", r.Intn(nodes))
		db.AddEdge(from, labels[r.Intn(len(labels))], to)
	}
	return db
}

// TestRoundTripPreservesDB: WriteTo followed by Read yields an Equal
// database on random multigraphs (node ids may permute — Read interns
// names in first-appearance order — but the graph must not change,
// even across a second round trip), and WriteTo is deterministic.
func TestRoundTripPreservesDB(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(r)
		var b strings.Builder
		if _, err := db.WriteTo(&b); err != nil {
			t.Fatalf("trial %d: WriteTo: %v", trial, err)
		}
		var again strings.Builder
		if _, err := db.WriteTo(&again); err != nil {
			t.Fatalf("trial %d: WriteTo rerun: %v", trial, err)
		}
		if b.String() != again.String() {
			t.Fatalf("trial %d: WriteTo is not deterministic", trial)
		}
		back, err := Read(strings.NewReader(b.String()), alphabet.New())
		if err != nil {
			t.Fatalf("trial %d: Read: %v\n%s", trial, err, b.String())
		}
		if !db.Equal(back) {
			t.Fatalf("trial %d: round trip changed the graph\n%s", trial, b.String())
		}
		var b2 strings.Builder
		if _, err := back.WriteTo(&b2); err != nil {
			t.Fatalf("trial %d: WriteTo after round trip: %v", trial, err)
		}
		back2, err := Read(strings.NewReader(b2.String()), alphabet.New())
		if err != nil {
			t.Fatalf("trial %d: second Read: %v", trial, err)
		}
		if !db.Equal(back2) {
			t.Fatalf("trial %d: second round trip changed the graph", trial)
		}
	}
}

// TestEqualDetectsDifferences: Equal must not be fooled by graphs that
// agree on counts but differ in structure.
func TestEqualDetectsDifferences(t *testing.T) {
	base := func() *DB {
		db := New(alphabet.New())
		db.AddEdge("a", "x", "b")
		db.AddEdge("b", "y", "c")
		return db
	}
	same := base()
	if !base().Equal(same) {
		t.Fatal("identical graphs must be Equal")
	}
	relabeled := New(alphabet.New())
	relabeled.AddEdge("a", "y", "b") // same counts, different label
	relabeled.AddEdge("b", "x", "c")
	if base().Equal(relabeled) {
		t.Fatal("Equal missed a label difference")
	}
	retargeted := New(alphabet.New())
	retargeted.AddEdge("a", "x", "c") // same counts, different target
	retargeted.AddEdge("b", "y", "b")
	if base().Equal(retargeted) {
		t.Fatal("Equal missed a target difference")
	}
	renamed := New(alphabet.New())
	renamed.AddEdge("a", "x", "b")
	renamed.AddEdge("b", "y", "d") // node c renamed
	if base().Equal(renamed) {
		t.Fatal("Equal missed a node-name difference")
	}
	multi := base()
	multi.AddEdge("a", "x", "b") // duplicate edge changes the multiset
	if base().Equal(multi) {
		t.Fatal("Equal missed a duplicate edge")
	}
}

// TestAddEdgeIDsMatchesAddEdge: the id-based fast path and the
// name-based path build Equal databases.
func TestAddEdgeIDsMatchesAddEdge(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	byName := New(alphabet.New())
	byID := New(alphabet.New())
	const nodes = 20
	ids := make([]NodeID, nodes)
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("n%d", i)
		byName.AddNode(name)
		ids[i] = byID.AddNode(name)
	}
	labels := []string{"a", "b"}
	syms := make([]alphabet.Symbol, len(labels))
	for i, l := range labels {
		syms[i] = byID.Labels().Intern(l)
	}
	for i := 0; i < 100; i++ {
		f, l, to := r.Intn(nodes), r.Intn(len(labels)), r.Intn(nodes)
		byName.AddEdge(fmt.Sprintf("n%d", f), labels[l], fmt.Sprintf("n%d", to))
		byID.AddEdgeIDs(ids[f], syms[l], ids[to])
	}
	if !byName.Equal(byID) {
		t.Fatal("AddEdgeIDs built a different graph than AddEdge")
	}
}
