package graph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/regex"
)

// travelDB builds the running example of the paper's introduction: a
// small web of cities and restaurants.
func travelDB() *DB {
	db := New(nil)
	db.AddEdge("root", "rome", "romePage")
	db.AddEdge("root", "jerusalem", "jerusalemPage")
	db.AddEdge("root", "paris", "parisPage")
	db.AddEdge("romePage", "district", "trastevere")
	db.AddEdge("trastevere", "restaurant", "carlotta")
	db.AddEdge("jerusalemPage", "restaurant", "taami")
	db.AddEdge("parisPage", "hotel", "ritz")
	return db
}

func eval(t *testing.T, db *DB, expr string) []string {
	t.Helper()
	q, err := regex.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return db.PairNames(db.Eval(q.ToNFA(alphabet.New())))
}

func TestEvalSingleEdge(t *testing.T) {
	db := travelDB()
	got := eval(t, db, "rome")
	if len(got) != 1 || got[0] != "root→romePage" {
		t.Fatalf("ans(rome) = %v", got)
	}
}

func TestEvalIntroQuery(t *testing.T) {
	// The introduction's query: (rome+jerusalem) followed by any number
	// of edges and a restaurant edge. Using explicit middle labels.
	db := travelDB()
	got := eval(t, db, "(rome+jerusalem)·district?·restaurant")
	want := map[string]bool{"root→carlotta": true, "root→taami": true}
	if len(got) != len(want) {
		t.Fatalf("ans = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected pair %s", p)
		}
	}
}

func TestEvalEpsilonGivesReflexivePairs(t *testing.T) {
	db := travelDB()
	got := eval(t, db, "rome?")
	// ε connects every node to itself; rome adds root→romePage.
	if len(got) != db.NumNodes()+1 {
		t.Fatalf("ans(rome?) = %d pairs, want %d", len(got), db.NumNodes()+1)
	}
}

func TestEvalStar(t *testing.T) {
	db := New(nil)
	db.AddEdge("a", "x", "b")
	db.AddEdge("b", "x", "c")
	db.AddEdge("c", "x", "a") // cycle
	got := eval(t, db, "x·x")
	if len(got) != 3 {
		t.Fatalf("ans(x·x) = %v", db.PairNames(db.Eval(regex.MustParse("x·x").ToNFA(alphabet.New()))))
	}
	star := eval(t, db, "x*")
	if len(star) != 9 { // every pair in the 3-cycle, including self
		t.Fatalf("ans(x*) = %d pairs, want 9", len(star))
	}
}

func TestEvalUnknownLabel(t *testing.T) {
	db := travelDB()
	if got := eval(t, db, "flight"); len(got) != 0 {
		t.Fatalf("ans(flight) = %v, want empty", got)
	}
}

func TestEvalEmptyLanguage(t *testing.T) {
	db := travelDB()
	if got := eval(t, db, "∅"); len(got) != 0 {
		t.Fatalf("ans(∅) = %v", got)
	}
}

func TestEvalMultigraph(t *testing.T) {
	db := New(nil)
	db.AddEdge("a", "x", "b")
	db.AddEdge("a", "x", "b") // duplicate edge
	db.AddEdge("a", "y", "b")
	if db.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", db.NumEdges())
	}
	got := eval(t, db, "x+y")
	if len(got) != 1 {
		t.Fatalf("answers deduplicated wrongly: %v", got)
	}
}

func TestEvalSortsPairs(t *testing.T) {
	db := New(nil)
	db.AddEdge("b", "x", "c")
	db.AddEdge("a", "x", "b")
	ps := db.Eval(regex.MustParse("x").ToNFA(alphabet.New()))
	for i := 1; i < len(ps); i++ {
		if ps[i-1].From > ps[i].From {
			t.Fatal("pairs not sorted")
		}
	}
}

func TestNodeAccessors(t *testing.T) {
	db := travelDB()
	id := db.NodeID("root")
	if id < 0 || db.NodeName(id) != "root" {
		t.Fatal("node accessors broken")
	}
	if db.NodeID("nope") != -1 {
		t.Fatal("missing node should be -1")
	}
	if db.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d, want 8", db.NumNodes())
	}
	if len(db.Out(id)) != 3 {
		t.Fatalf("Out(root) = %d edges, want 3", len(db.Out(id)))
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	db := travelDB()
	db.AddNode("isolated")
	var b strings.Builder
	if _, err := db.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()), alphabet.New())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != db.NumNodes() || back.NumEdges() != db.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			back.NumNodes(), db.NumNodes(), back.NumEdges(), db.NumEdges())
	}
	// Same answers on a sample query.
	q := regex.MustParse("(rome+jerusalem)·district?·restaurant")
	if len(back.Eval(q.ToNFA(alphabet.New()))) != len(db.Eval(q.ToNFA(alphabet.New()))) {
		t.Fatal("round trip changed query answers")
	}
}

func TestReadComments(t *testing.T) {
	in := "# comment\n\na x b\nlonely\n"
	db, err := Read(strings.NewReader(in), alphabet.New())
	if err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 3 || db.NumEdges() != 1 {
		t.Fatalf("nodes=%d edges=%d", db.NumNodes(), db.NumEdges())
	}
}

func TestReadBadLine(t *testing.T) {
	if _, err := Read(strings.NewReader("a b\n"), alphabet.New()); err == nil {
		t.Fatal("2-field line accepted")
	}
}

func TestPathDB(t *testing.T) {
	domain := alphabet.FromNames("p", "q")
	word := automata.ParseWord(domain, "p q p")
	db, first, last := PathDB(domain, word)
	if db.NumNodes() != 4 || db.NumEdges() != 3 {
		t.Fatalf("path db: %d nodes %d edges", db.NumNodes(), db.NumEdges())
	}
	// The exact word connects first to last.
	q := regex.MustParse("p·q·p")
	ps := db.Eval(q.ToNFA(alphabet.New()))
	found := false
	for _, p := range ps {
		if p.From == first && p.To == last {
			found = true
		}
	}
	if !found {
		t.Fatal("path word does not connect endpoints")
	}
}

func TestEvalSharedDomainAlphabet(t *testing.T) {
	// Automaton built on the same alphabet instance as the DB labels.
	domain := alphabet.New()
	db := New(domain)
	db.AddEdge("a", "x", "b")
	q := regex.MustParse("x").ToNFA(domain)
	if got := db.Eval(q); len(got) != 1 {
		t.Fatalf("Eval with shared alphabet = %v", got)
	}
}

func TestEvalFrom(t *testing.T) {
	db := travelDB()
	q := regex.MustParse("(rome+jerusalem)·district?·restaurant").ToNFA(alphabet.New())
	root := db.NodeID("root")
	got := db.EvalFrom(q, root)
	if len(got) != 2 {
		t.Fatalf("EvalFrom(root) = %d nodes, want 2", len(got))
	}
	// Agreement with the all-pairs answer restricted to root.
	var want []NodeID
	for _, p := range db.Eval(q) {
		if p.From == root {
			want = append(want, p.To)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("EvalFrom disagrees with Eval: %v vs %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EvalFrom order differs at %d", i)
		}
	}
	// Non-root node has no matching path.
	if rs := db.EvalFrom(q, db.NodeID("parisPage")); len(rs) != 0 {
		t.Fatalf("EvalFrom(parisPage) = %v", rs)
	}
	// Out-of-range start is rejected.
	if rs := db.EvalFrom(q, -1); rs != nil {
		t.Fatal("negative start should give nil")
	}
}

func TestEvalFromAgreesOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	db := New(nil)
	for i := 0; i < 12; i++ {
		db.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < 40; i++ {
		db.AddEdge(fmt.Sprintf("n%d", r.Intn(12)), []string{"x", "y"}[r.Intn(2)], fmt.Sprintf("n%d", r.Intn(12)))
	}
	q := regex.MustParse("x·(y+x)*").ToNFA(alphabet.New())
	all := db.Eval(q)
	for start := 0; start < db.NumNodes(); start++ {
		var want []NodeID
		for _, p := range all {
			if p.From == NodeID(start) {
				want = append(want, p.To)
			}
		}
		got := db.EvalFrom(q, NodeID(start))
		if len(got) != len(want) {
			t.Fatalf("start %d: %v vs %v", start, got, want)
		}
	}
}

func TestDOT(t *testing.T) {
	db := New(nil)
	db.AddEdge("a", "x", "b")
	dot := db.DOT("g")
	for _, frag := range []string{`digraph "g"`, `"a" -> "b" [label="x"]`} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
}
