package graph

import (
	"strings"
	"testing"

	"regexrw/internal/alphabet"
)

// FuzzParseGraph is the stronger sibling of FuzzRead: beyond parse
// stability it checks full structural preservation — an accepted input
// survives a WriteTo/Read round trip with the graph unchanged under
// Equal (node names and per-node edge multisets; ids may permute, as
// Read interns names in first-appearance order), across two round
// trips. The committed seed corpus covers truncated lines, duplicate
// node declarations, labels outside any pre-interned domain, and huge
// numeric names.
func FuzzParseGraph(f *testing.F) {
	for _, seed := range []string{
		"a x b\n",
		"a x",             // truncated triple: 2 fields, must error
		"a x b\nb y c\nc", // trailing truncation down to a node line
		"n\nn\nn\n",       // duplicate node declarations
		"a q b\n",         // label not in any pre-seeded domain
		"n999999999999999999 x n999999999999999999\n", // huge ids as names
		"# comment\n\n  \na x b\n",
		"a\tx\tb\r\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		db, err := Read(strings.NewReader(input), alphabet.New())
		if err != nil {
			return
		}
		var b strings.Builder
		if _, err := db.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo failed: %v", err)
		}
		back, err := Read(strings.NewReader(b.String()), alphabet.New())
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized:\n%s", err, b.String())
		}
		if !db.Equal(back) {
			t.Fatalf("round trip changed the graph\ninput:\n%s\nserialized:\n%s", input, b.String())
		}
		var b2 strings.Builder
		if _, err := back.WriteTo(&b2); err != nil {
			t.Fatalf("WriteTo of re-read db failed: %v", err)
		}
		back2, err := Read(strings.NewReader(b2.String()), alphabet.New())
		if err != nil {
			t.Fatalf("second round trip failed: %v\nserialized:\n%s", err, b2.String())
		}
		if !db.Equal(back2) {
			t.Fatalf("second round trip changed the graph\ninput:\n%s", input)
		}
	})
}

// FuzzRead checks the graph reader never panics and that accepted
// inputs round-trip through WriteTo/Read preserving node and edge
// counts.
func FuzzRead(f *testing.F) {
	for _, seed := range []string{
		"a x b\n", "# c\n\nn\n", "a x b\nb y c\nc x a\n", "a b\n", "one two three four\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		db, err := Read(strings.NewReader(input), alphabet.New())
		if err != nil {
			return
		}
		var b strings.Builder
		if _, err := db.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo failed: %v", err)
		}
		back, err := Read(strings.NewReader(b.String()), alphabet.New())
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized:\n%s", err, b.String())
		}
		if back.NumNodes() != db.NumNodes() || back.NumEdges() != db.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
				back.NumNodes(), db.NumNodes(), back.NumEdges(), db.NumEdges())
		}
	})
}
