package graph

import (
	"strings"
	"testing"

	"regexrw/internal/alphabet"
)

// FuzzRead checks the graph reader never panics and that accepted
// inputs round-trip through WriteTo/Read preserving node and edge
// counts.
func FuzzRead(f *testing.F) {
	for _, seed := range []string{
		"a x b\n", "# c\n\nn\n", "a x b\nb y c\nc x a\n", "a b\n", "one two three four\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		db, err := Read(strings.NewReader(input), alphabet.New())
		if err != nil {
			return
		}
		var b strings.Builder
		if _, err := db.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo failed: %v", err)
		}
		back, err := Read(strings.NewReader(b.String()), alphabet.New())
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized:\n%s", err, b.String())
		}
		if back.NumNodes() != db.NumNodes() || back.NumEdges() != db.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
				back.NumNodes(), db.NumNodes(), back.NumEdges(), db.NumEdges())
		}
	})
}
