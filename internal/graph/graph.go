// Package graph implements the semi-structured database of Section 4: a
// directed multigraph whose edges are labeled by constants from a
// finite domain D, together with the evaluation of regular path queries
// — the answer ans(ℓ, DB) is the set of node pairs connected by a path
// whose label word lies in the language ℓ (Definition 5).
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// NodeID identifies a node within a DB.
type NodeID int

// Edge is a labeled edge to a target node.
type Edge struct {
	Label alphabet.Symbol
	To    NodeID
}

// Pair is an element of a query answer: two nodes connected by a
// conforming path.
type Pair struct {
	From, To NodeID
}

// DB is a semi-structured database: named nodes and D-labeled edges.
// The zero value is not usable; create with New.
type DB struct {
	nodes  *alphabet.Alphabet // node names → dense ids
	labels *alphabet.Alphabet // D
	out    [][]Edge
}

// New returns an empty database whose edge labels are drawn from the
// given domain alphabet (constants are interned into it as edges are
// added).
func New(domain *alphabet.Alphabet) *DB {
	if domain == nil {
		domain = alphabet.New()
	}
	return &DB{nodes: alphabet.New(), labels: domain}
}

// AddNode adds a node (idempotent) and returns its id.
func (db *DB) AddNode(name string) NodeID {
	id := db.nodes.Intern(name)
	for len(db.out) <= int(id) {
		db.out = append(db.out, nil)
	}
	return NodeID(id)
}

// AddEdge adds the edge from --label--> to, adding nodes and interning
// the label as needed. Duplicate edges are kept (multigraph).
func (db *DB) AddEdge(from, label, to string) {
	f := db.AddNode(from)
	t := db.AddNode(to)
	l := db.labels.Intern(label)
	db.out[f] = append(db.out[f], Edge{Label: l, To: t})
}

// AddEdgeIDs adds the edge from --label--> to by ids: no name
// interning, no adjacency growth. This is the fast path used by the
// million-edge workload generators, where nodes are pre-added and the
// label symbol is interned once. Both node ids must come from AddNode
// on this database and the label from its domain alphabet; out-of-range
// ids panic (from) or corrupt evaluation (to), exactly like indexing a
// slice out of bounds.
func (db *DB) AddEdgeIDs(from NodeID, label alphabet.Symbol, to NodeID) {
	db.out[from] = append(db.out[from], Edge{Label: label, To: to})
}

// NumNodes returns the number of nodes.
func (db *DB) NumNodes() int { return db.nodes.Len() }

// NumEdges returns the number of edges.
func (db *DB) NumEdges() int {
	total := 0
	for _, es := range db.out {
		total += len(es)
	}
	return total
}

// NodeName returns the name of a node id.
func (db *DB) NodeName(n NodeID) string { return db.nodes.Name(alphabet.Symbol(n)) }

// NodeID returns the id of a named node, or -1.
func (db *DB) NodeID(name string) NodeID {
	s := db.nodes.Lookup(name)
	if s == alphabet.None {
		return -1
	}
	return NodeID(s)
}

// Labels returns the domain alphabet D.
func (db *DB) Labels() *alphabet.Alphabet { return db.labels }

// Out returns the outgoing edges of n (shared slice; do not mutate).
func (db *DB) Out(n NodeID) []Edge { return db.out[n] }

// Eval computes ans(L(a), db): all pairs (x, y) such that some path
// from x to y spells a word of L(a). The automaton must be over an
// alphabet compatible with db's label domain (symbols are matched by
// name). Pairs are returned sorted.
func (db *DB) Eval(a *automata.NFA) []Pair {
	nfa := a.RemoveEpsilon()
	if nfa.Start() == automata.NoState {
		return nil
	}
	// Map automaton symbols to db label ids by name.
	toDB := make([]alphabet.Symbol, nfa.Alphabet().Len())
	for _, x := range nfa.Alphabet().Symbols() {
		toDB[x] = db.labels.Lookup(nfa.Alphabet().Name(x))
	}
	// Transitions indexed by db label for the inner loop.
	byLabel := make([]map[automata.State][]automata.State, db.labels.Len())
	for s := 0; s < nfa.NumStates(); s++ {
		for _, x := range nfa.OutSymbols(automata.State(s)) { //mapiter:unordered builds an index; answer pairs are sorted before return
			l := toDB[x]
			if l == alphabet.None {
				continue
			}
			if byLabel[l] == nil {
				byLabel[l] = map[automata.State][]automata.State{}
			}
			byLabel[l][automata.State(s)] = append(byLabel[l][automata.State(s)], nfa.Successors(automata.State(s), x)...)
		}
	}

	var out []Pair
	type cfg struct {
		node  NodeID
		state automata.State
	}
	for start := 0; start < db.NumNodes(); start++ {
		seen := map[cfg]bool{}
		emitted := map[NodeID]bool{}
		queue := []cfg{{NodeID(start), nfa.Start()}}
		seen[queue[0]] = true
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			if nfa.Accepting(c.state) && !emitted[c.node] {
				emitted[c.node] = true
				out = append(out, Pair{NodeID(start), c.node})
			}
			for _, e := range db.out[c.node] {
				if int(e.Label) >= len(byLabel) || byLabel[e.Label] == nil {
					continue
				}
				for _, t := range byLabel[e.Label][c.state] {
					nc := cfg{e.To, t}
					if !seen[nc] {
						seen[nc] = true
						queue = append(queue, nc)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// EvalFrom computes the single-source answer: the nodes y such that
// some path from start to y spells a word of L(a). Same product BFS as
// Eval restricted to one start node.
func (db *DB) EvalFrom(a *automata.NFA, start NodeID) []NodeID {
	nfa := a.RemoveEpsilon()
	if nfa.Start() == automata.NoState || start < 0 || int(start) >= db.NumNodes() {
		return nil
	}
	toDB := make([]alphabet.Symbol, nfa.Alphabet().Len())
	for _, x := range nfa.Alphabet().Symbols() {
		toDB[x] = db.labels.Lookup(nfa.Alphabet().Name(x))
	}
	type cfg struct {
		node  NodeID
		state automata.State
	}
	seen := map[cfg]bool{{start, nfa.Start()}: true}
	queue := []cfg{{start, nfa.Start()}}
	emitted := map[NodeID]bool{}
	var out []NodeID
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if nfa.Accepting(c.state) && !emitted[c.node] {
			emitted[c.node] = true
			out = append(out, c.node)
		}
		for _, e := range db.out[c.node] {
			for _, x := range nfa.OutSymbols(c.state) { //mapiter:unordered BFS over a set; answer nodes are sorted before return
				if toDB[x] != e.Label {
					continue
				}
				for _, t := range nfa.Successors(c.state, x) {
					nc := cfg{e.To, t}
					if !seen[nc] {
						seen[nc] = true
						queue = append(queue, nc)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PairNames renders an answer with node names, for display and tests.
func (db *DB) PairNames(ps []Pair) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = db.NodeName(p.From) + "→" + db.NodeName(p.To)
	}
	return out
}

// DOT renders the database in Graphviz dot syntax, for visual
// inspection of small graphs.
func (db *DB) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for n := 0; n < db.NumNodes(); n++ {
		fmt.Fprintf(&b, "  %q;\n", db.NodeName(NodeID(n)))
	}
	for f, es := range db.out {
		for _, e := range es {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
				db.NodeName(NodeID(f)), db.NodeName(e.To), db.labels.Name(e.Label))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// WriteTo serializes the database in the text format read by Read: one
// "from label to" triple per line, nodes implied by edges, and isolated
// nodes as single-field lines.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	var total int64
	hasEdge := make([]bool, db.NumNodes())
	for f, es := range db.out {
		for _, e := range es {
			hasEdge[f] = true
			hasEdge[e.To] = true
			n, err := fmt.Fprintf(w, "%s %s %s\n", db.NodeName(NodeID(f)), db.labels.Name(e.Label), db.NodeName(e.To))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	for i, has := range hasEdge {
		if !has {
			n, err := fmt.Fprintf(w, "%s\n", db.NodeName(NodeID(i)))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// Read parses the text format of WriteTo into a new database over the
// given domain. Lines are "from label to" triples or single node names;
// blank lines and lines starting with '#' are ignored.
func Read(r io.Reader, domain *alphabet.Alphabet) (*DB, error) {
	db := New(domain)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch len(fields) {
		case 1:
			db.AddNode(fields[0])
		case 3:
			db.AddEdge(fields[0], fields[1], fields[2])
		default:
			return nil, fmt.Errorf("graph: line %d: want 1 or 3 fields, got %d", lineNo, len(fields))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// Equal reports whether two databases describe the same graph: the
// same node-name set and, per node, the same multiset of outgoing
// edges by (label name, target name). Node and label ids are not
// compared — serialization round trips permute ids (Read interns names
// in first-appearance order) without changing the graph.
func (db *DB) Equal(o *DB) bool {
	if db.NumNodes() != o.NumNodes() || db.NumEdges() != o.NumEdges() {
		return false
	}
	for n := 0; n < db.NumNodes(); n++ {
		name := db.NodeName(NodeID(n))
		on := o.NodeID(name)
		if on < 0 {
			return false
		}
		a := db.renderEdges(NodeID(n))
		b := o.renderEdges(on)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// renderEdges returns the out-edges of n as sorted "label target"
// name pairs, the id-agnostic form compared by Equal.
func (db *DB) renderEdges(n NodeID) []string {
	es := db.out[n]
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = db.labels.Name(e.Label) + "\x00" + db.NodeName(e.To)
	}
	sort.Strings(out)
	return out
}

// PathDB builds the single-path database x0 --a1--> x1 --a2--> … used in
// the proof of Theorem 10, returning it with the start and end nodes.
func PathDB(domain *alphabet.Alphabet, labels []alphabet.Symbol) (*DB, NodeID, NodeID) {
	db := New(domain)
	first := db.AddNode("n0")
	prev := first
	for i, l := range labels {
		next := db.AddNode(fmt.Sprintf("n%d", i+1))
		db.out[prev] = append(db.out[prev], Edge{Label: l, To: next})
		prev = next
	}
	return db, first, prev
}
