package planstore

import (
	"errors"
	"fmt"
	"os"
	"syscall"
	"testing"

	"regexrw/internal/budget/faultinject"
	"regexrw/internal/obs"
)

// typedIOError reports whether err is one of the store's declared
// failure modes — nothing an injected fault produces may surface as an
// untyped error the serving layer cannot classify.
func typedIOError(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) ||
		errors.Is(err, faultinject.ErrInjected) || errors.Is(err, syscall.ENOSPC)
}

// TestStoreFaultSweep drives every (operation, failure-kind) pair from
// the faultinject I/O matrix through a Put+Get cycle and asserts the
// durability contract at each:
//
//   - no panic, and every failure is a typed error;
//   - a failed Put publishes nothing: the key reads back ErrNotFound,
//     never a torn entry;
//   - a Get that succeeds returns exactly the plan that was written —
//     corrupt bytes are never served;
//   - a Get that detects corruption quarantines exactly the poisoned
//     entry, and the key is then a clean miss (recompilable);
//   - after the one-shot fault has fired, a fresh Put+Get round trip
//     succeeds — the store recovers without intervention.
func TestStoreFaultSweep(t *testing.T) {
	for _, site := range faultinject.AllIOSites() {
		site := site
		t.Run(fmt.Sprintf("%s_%s", site.Op, site.Kind), func(t *testing.T) {
			hook, fired := faultinject.IOFault(site.Op, 1, site.Kind)
			// Breaker disabled: the sweep studies single-fault behavior;
			// TestStoreBreaker owns repeated-failure behavior.
			s, err := Open(t.TempDir(), WithMetrics(obs.NewRegistry()), WithoutSync(),
				WithBreaker(0, 0), WithHook(hook))
			if err != nil {
				t.Fatal(err)
			}
			key := testKey(100)
			want := testPlan(key)

			putErr := s.Put(want)
			got, getErr := s.Get(key)

			if putErr != nil {
				// Atomic publish: a failed write leaves no trace under
				// the live key — not even a corrupt one.
				if !typedIOError(putErr) {
					t.Fatalf("Put failed with untyped error: %v", putErr)
				}
				if !errors.Is(getErr, ErrNotFound) {
					t.Fatalf("Get after failed Put: plan=%v err=%v, want ErrNotFound", got, getErr)
				}
			} else {
				switch {
				case getErr == nil:
					if got.Rewriting != want.Rewriting || got.Verdict != want.Verdict || got.States != want.States {
						t.Fatalf("served plan differs from written plan: %+v", got)
					}
					if !got.MinimalDFA.AcceptsNames("e2", "e1", "e3") || got.MinimalDFA.AcceptsNames("e3") {
						t.Fatal("served plan's DFA denotes the wrong language")
					}
				case errors.Is(getErr, ErrCorrupt):
					q, err := os.ReadDir(s.QuarantineDir())
					if err != nil {
						t.Fatal(err)
					}
					if len(q) != 1 || q[0].Name() != key+".plan" {
						t.Fatalf("quarantine should contain exactly the poisoned entry, has %v", q)
					}
					if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
						t.Fatalf("quarantined key should be a clean miss: %v", err)
					}
				case typedIOError(getErr):
					// e.g. injected read/open failure: served from compile
					// upstream; nothing should be quarantined.
					if q, _ := os.ReadDir(s.QuarantineDir()); len(q) != 0 {
						t.Fatalf("healthy entry quarantined after transient I/O error: %v", q)
					}
				default:
					t.Fatalf("Get failed with untyped error: %v", getErr)
				}
			}

			// The sweep only proves something if the fault actually
			// triggered on this path.
			if !fired() {
				t.Fatalf("fault %s/%s never fired during Put+Get", site.Op, site.Kind)
			}

			// Recovery: the fault is one-shot; the store must round
			// trip cleanly now.
			if err := s.Put(want); err != nil {
				t.Fatalf("Put after fault: %v", err)
			}
			back, err := s.Get(key)
			if err != nil {
				t.Fatalf("Get after repair: %v", err)
			}
			if back.Rewriting != want.Rewriting {
				t.Fatalf("repaired plan differs: %+v", back)
			}
		})
	}
}

// TestStoreFaultSweepGetOpen targets the read path's own open (the
// second open occurrence after Put's): the entry on disk stays healthy,
// the Get fails typed, and the next Get serves it.
func TestStoreFaultSweepGetOpen(t *testing.T) {
	hook, fired := faultinject.IOFault(faultinject.IOOpen, 2, faultinject.IOErrFail)
	s, err := Open(t.TempDir(), WithMetrics(obs.NewRegistry()), WithoutSync(),
		WithBreaker(0, 0), WithHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(101)
	if err := s.Put(testPlan(key)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Get with open fault: %v, want ErrInjected", err)
	}
	if !fired() {
		t.Fatal("fault never fired")
	}
	if _, err := s.Get(key); err != nil {
		t.Fatalf("entry should survive a transient open failure: %v", err)
	}
}
