package planstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// The plan envelope is the durable form of one compiled plan: a small
// binary frame around the text automata codec, designed so that a torn
// or bit-flipped file is always DETECTED, never decoded into a subtly
// wrong plan. The frame is
//
//	magic   [8]byte  "RWPLAN\x00" + version
//	length  uint64   big-endian body length
//	body    [length]byte
//	sum     [32]byte SHA-256 of body
//
// and the body is a tagged record stream — tag byte, big-endian uint32
// payload length, payload — extending the length-prefixed discipline of
// the internal/automata codec. Every record length is validated against
// the remaining body before any allocation, unknown tags are rejected
// (versioning is by the magic byte, not by silent skipping), and the
// checksum is verified before the body is parsed at all.

// Version is the current envelope version, carried in the magic's last
// byte. Bump on any incompatible body change; readers reject other
// versions as corrupt (a store populated by an old binary warm-misses
// and recompiles, it never mis-decodes).
const Version = 1

var magic = [8]byte{'R', 'W', 'P', 'L', 'A', 'N', 0, Version}

// maxEnvelopeBody caps the declared body length so a corrupt or
// adversarial header cannot make ReadPlan allocate gigabytes before the
// checksum is ever consulted. Real plans are a few KiB to a few MiB;
// the automata codec's own state cap bounds them well below this.
const maxEnvelopeBody = 1 << 28

// Record tags of the body stream.
const (
	tagKey          = 1  // canonical cache key (hex SHA-256)
	tagKind         = 2  // "regex" or "rpq"
	tagRewriting    = 3  // rewriting regular expression over view names
	tagVerdict      = 4  // exactness verdict byte (0 unknown, 1 yes, 2 no)
	tagWitness      = 5  // exactness counterexample word (view of Σ names)
	tagStage        = 6  // budget stage that ended an unknown verdict
	tagReason       = 7  // rendered error that ended an unknown verdict
	tagShortestWord = 8  // shortest Σ_E-word with non-empty expansion; presence = exists
	tagStates       = 9  // states the cold compile materialized (int64)
	tagRewritingNFA = 10 // rewriting NFA over Σ_E (automata text codec)
	tagMinimalDFA   = 11 // canonical minimal DFA over Σ_E (automata text codec)
)

// StoredPlan is the durable subset of a compiled plan: everything the
// serving layer answers requests from, detached from the in-memory
// construction (the core.Rewriting diagnostics are deliberately not
// persisted — a restored plan serves, it does not explain). The NFA and
// DFA share one alphabet over the instance's view names.
type StoredPlan struct {
	// Key is the canonical cache key the plan was compiled under.
	Key string
	// Kind is "regex" or "rpq", recording which compile path produced
	// the plan (diagnostic only; both kinds serve identically).
	Kind string
	// Rewriting is the maximal rewriting as a simplified regular
	// expression over the view names.
	Rewriting string
	// Verdict is the exactness verdict (core.ExactVerdict numbering:
	// 0 unknown, 1 yes, 2 no).
	Verdict int
	// Witness is the shortest word of L(E0) \ exp(L(R)) by symbol name
	// when Verdict is no.
	Witness []string
	// Stage and Reason carry the budget diagnostics of an unknown
	// verdict (Reason is the rendered error).
	Stage, Reason string
	// ShortestWord is a shortest Σ_E-word with non-empty expansion, by
	// view name; HasShortestWord distinguishes "the empty word" from
	// "no such word".
	ShortestWord    []string
	HasShortestWord bool
	// States is the automaton-state count the cold compile materialized.
	States int64
	// RewritingNFA is the rewriting automaton over Σ_E; MinimalDFA its
	// canonical minimal DFA. Both are decoded into the same alphabet.
	RewritingNFA *automata.NFA
	MinimalDFA   *automata.DFA
}

// CorruptError reports an envelope that failed checksum or structural
// verification. It matches errors.Is(err, ErrCorrupt); Path is set when
// the envelope came from the store (empty for direct ReadPlan calls).
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("planstore: corrupt plan envelope: %s", e.Reason)
	}
	return fmt.Sprintf("planstore: corrupt plan envelope %s: %s", e.Path, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) match any *CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// WritePlan serializes the plan as one checksummed envelope.
func WritePlan(w io.Writer, sp *StoredPlan) (int64, error) {
	data, err := EncodePlan(sp)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// EncodePlan renders the envelope bytes. Encoding is deterministic:
// the same StoredPlan always produces the same bytes, so re-persisting
// an unchanged plan is idempotent at the byte level.
func EncodePlan(sp *StoredPlan) ([]byte, error) {
	if sp.RewritingNFA == nil || sp.MinimalDFA == nil {
		return nil, fmt.Errorf("planstore: encode: plan is missing its automata")
	}
	var body bytes.Buffer
	addRecord(&body, tagKey, []byte(sp.Key))
	addRecord(&body, tagKind, []byte(sp.Kind))
	addRecord(&body, tagRewriting, []byte(sp.Rewriting))
	addRecord(&body, tagVerdict, []byte{byte(sp.Verdict)})
	if len(sp.Witness) > 0 {
		addRecord(&body, tagWitness, encodeStrings(sp.Witness))
	}
	if sp.Stage != "" {
		addRecord(&body, tagStage, []byte(sp.Stage))
	}
	if sp.Reason != "" {
		addRecord(&body, tagReason, []byte(sp.Reason))
	}
	if sp.HasShortestWord {
		addRecord(&body, tagShortestWord, encodeStrings(sp.ShortestWord))
	}
	var states [8]byte
	binary.BigEndian.PutUint64(states[:], uint64(sp.States))
	addRecord(&body, tagStates, states[:])

	var nfa strings.Builder
	if _, err := sp.RewritingNFA.WriteTo(&nfa); err != nil {
		return nil, err
	}
	addRecord(&body, tagRewritingNFA, []byte(nfa.String()))
	var dfa strings.Builder
	if _, err := sp.MinimalDFA.WriteTo(&dfa); err != nil {
		return nil, err
	}
	addRecord(&body, tagMinimalDFA, []byte(dfa.String()))

	if body.Len() > maxEnvelopeBody {
		return nil, fmt.Errorf("planstore: encode: body %d bytes exceeds limit %d", body.Len(), maxEnvelopeBody)
	}
	out := make([]byte, 0, len(magic)+8+body.Len()+sha256.Size)
	out = append(out, magic[:]...)
	var length [8]byte
	binary.BigEndian.PutUint64(length[:], uint64(body.Len()))
	out = append(out, length[:]...)
	out = append(out, body.Bytes()...)
	sum := sha256.Sum256(body.Bytes())
	out = append(out, sum[:]...)
	return out, nil
}

func addRecord(b *bytes.Buffer, tag byte, payload []byte) {
	b.WriteByte(tag)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(payload)))
	b.Write(l[:])
	b.Write(payload)
}

func encodeStrings(ss []string) []byte {
	var b bytes.Buffer
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(ss)))
	b.Write(l[:])
	for _, s := range ss {
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		b.Write(l[:])
		b.WriteString(s)
	}
	return b.Bytes()
}

// ReadPlan reads one envelope from r: frame, checksum, then body. Any
// deviation — wrong magic or version, declared length beyond the cap or
// the input, checksum mismatch, malformed records, automata the codec
// rejects — returns a *CorruptError (never a panic, never a silently
// wrong plan). I/O errors other than clean truncation surface as-is.
func ReadPlan(r io.Reader) (*StoredPlan, error) {
	var head [16]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, corruptf("truncated header: %v", err)
	}
	if !bytes.Equal(head[:8], magic[:]) {
		return nil, corruptf("bad magic %q (want version %d)", head[:8], Version)
	}
	length := binary.BigEndian.Uint64(head[8:])
	if length > maxEnvelopeBody {
		return nil, corruptf("declared body length %d exceeds limit %d", length, maxEnvelopeBody)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, corruptf("truncated body: %v", err)
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, corruptf("truncated checksum: %v", err)
	}
	if got := sha256.Sum256(body); got != sum {
		return nil, corruptf("checksum mismatch")
	}
	return decodeBody(body)
}

// DecodePlan is ReadPlan over in-memory bytes, rejecting trailing
// garbage after the envelope.
func DecodePlan(data []byte) (*StoredPlan, error) {
	r := bytes.NewReader(data)
	sp, err := ReadPlan(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, corruptf("%d trailing bytes after envelope", r.Len())
	}
	return sp, nil
}

// decodeBody parses the checksummed record stream. The checksum has
// already matched, so failures here mean an encoder bug or a hash
// collision; they are still reported as corruption, not panics.
func decodeBody(body []byte) (*StoredPlan, error) {
	sp := &StoredPlan{}
	seen := map[byte]bool{}
	var nfaText, dfaText []byte
	for off := 0; off < len(body); { //budget:exempt decode loop advances by at least one validated record per iteration, linear in the checksummed input
		if len(body)-off < 5 {
			return nil, corruptf("truncated record header at offset %d", off)
		}
		tag := body[off]
		plen := int(binary.BigEndian.Uint32(body[off+1 : off+5]))
		off += 5
		if plen < 0 || plen > len(body)-off {
			return nil, corruptf("record %d declares %d bytes with %d remaining", tag, plen, len(body)-off)
		}
		payload := body[off : off+plen]
		off += plen
		if seen[tag] {
			return nil, corruptf("duplicate record %d", tag)
		}
		seen[tag] = true
		switch tag {
		case tagKey:
			sp.Key = string(payload)
		case tagKind:
			sp.Kind = string(payload)
		case tagRewriting:
			sp.Rewriting = string(payload)
		case tagVerdict:
			if len(payload) != 1 || payload[0] > 2 {
				return nil, corruptf("bad verdict record")
			}
			sp.Verdict = int(payload[0])
		case tagWitness:
			w, err := decodeStrings(payload)
			if err != nil {
				return nil, err
			}
			sp.Witness = w
		case tagStage:
			sp.Stage = string(payload)
		case tagReason:
			sp.Reason = string(payload)
		case tagShortestWord:
			w, err := decodeStrings(payload)
			if err != nil {
				return nil, err
			}
			sp.ShortestWord, sp.HasShortestWord = w, true
		case tagStates:
			if len(payload) != 8 {
				return nil, corruptf("bad states record")
			}
			sp.States = int64(binary.BigEndian.Uint64(payload))
		case tagRewritingNFA:
			nfaText = payload
		case tagMinimalDFA:
			dfaText = payload
		default:
			return nil, corruptf("unknown record tag %d", tag)
		}
	}
	for _, required := range []struct {
		tag  byte
		name string
	}{
		{tagKey, "key"}, {tagKind, "kind"}, {tagRewriting, "rewriting"},
		{tagVerdict, "verdict"}, {tagStates, "states"},
		{tagRewritingNFA, "rewriting NFA"}, {tagMinimalDFA, "minimal DFA"},
	} {
		if !seen[required.tag] {
			return nil, corruptf("missing %s record", required.name)
		}
	}

	// Both automata decode into one shared Σ_E alphabet so view names
	// resolve consistently across them.
	sigmaE := alphabet.New()
	nfa, err := automata.ReadNFA(bytes.NewReader(nfaText), sigmaE)
	if err != nil {
		return nil, corruptf("rewriting NFA: %v", err)
	}
	dfa, err := automata.ReadDFA(bytes.NewReader(dfaText), sigmaE)
	if err != nil {
		return nil, corruptf("minimal DFA: %v", err)
	}
	sp.RewritingNFA, sp.MinimalDFA = nfa, dfa
	return sp, nil
}

func decodeStrings(payload []byte) ([]string, error) {
	if len(payload) < 4 {
		return nil, corruptf("truncated string list")
	}
	count := int(binary.BigEndian.Uint32(payload))
	off := 4
	if count > (len(payload)-off)/4 { // each item needs >= 4 bytes of header alone
		return nil, corruptf("string list declares %d items in %d bytes", count, len(payload)-off)
	}
	out := make([]string, 0, count)
	for i := 0; i < count; i++ { //budget:exempt count is validated against the payload size above; each iteration consumes at least its 4-byte header
		if len(payload)-off < 4 {
			return nil, corruptf("truncated string list item %d", i)
		}
		l := int(binary.BigEndian.Uint32(payload[off:]))
		off += 4
		if l < 0 || l > len(payload)-off {
			return nil, corruptf("string list item %d declares %d bytes with %d remaining", i, l, len(payload)-off)
		}
		out = append(out, string(payload[off:off+l]))
		off += l
	}
	if off != len(payload) {
		return nil, corruptf("%d trailing bytes in string list", len(payload)-off)
	}
	return out, nil
}
