package planstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// randomStoredPlan builds a random but structurally valid plan,
// including shapes the engine never produces (empty automata, empty
// witness lists, unknown verdicts), so the codec is exercised beyond
// the happy path.
func randomStoredPlan(r *rand.Rand) *StoredPlan {
	a := alphabet.New()
	symbols := make([]alphabet.Symbol, 1+r.Intn(4))
	names := make([]string, len(symbols))
	for i := range symbols {
		names[i] = fmt.Sprintf("v%d", i)
		symbols[i] = a.Intern(names[i])
	}
	n := automata.NewNFA(a)
	states := 1 + r.Intn(6)
	n.AddStates(states)
	n.SetStart(automata.State(r.Intn(states)))
	for s := 0; s < states; s++ {
		if r.Float64() < 0.3 {
			n.SetAccept(automata.State(s), true)
		}
		for t := 0; t < states; t++ {
			if r.Float64() < 0.2 {
				n.AddTransition(automata.State(s), symbols[r.Intn(len(symbols))], automata.State(t))
			}
		}
	}
	d := automata.NewDFA(a)
	for i := 0; i < states; i++ {
		d.AddState()
	}
	d.SetStart(automata.State(r.Intn(states)))
	for s := 0; s < states; s++ {
		if r.Float64() < 0.3 {
			d.SetAccept(automata.State(s), true)
		}
		for _, x := range symbols {
			if r.Float64() < 0.3 {
				d.SetTransition(automata.State(s), x, automata.State(r.Intn(states)))
			}
		}
	}
	randomWord := func() []string {
		w := make([]string, r.Intn(4))
		for i := range w {
			w[i] = names[r.Intn(len(names))]
		}
		return w
	}
	sp := &StoredPlan{
		Key:          fmt.Sprintf("%064x", r.Int63()),
		Kind:         []string{"regex", "rpq"}[r.Intn(2)],
		Rewriting:    "v0*",
		Verdict:      r.Intn(3),
		States:       r.Int63n(1 << 30),
		RewritingNFA: n,
		MinimalDFA:   d,
	}
	if sp.Verdict == 2 && r.Float64() < 0.8 {
		sp.Witness = randomWord()
	}
	if sp.Verdict == 0 {
		sp.Stage, sp.Reason = "core.expand", "budget: states exceeded"
	}
	if r.Float64() < 0.7 {
		sp.ShortestWord, sp.HasShortestWord = randomWord(), true
	}
	return sp
}

func equalPlans(a, b *StoredPlan) error {
	if a.Key != b.Key || a.Kind != b.Kind || a.Rewriting != b.Rewriting ||
		a.Verdict != b.Verdict || a.Stage != b.Stage || a.Reason != b.Reason ||
		a.States != b.States || a.HasShortestWord != b.HasShortestWord {
		return fmt.Errorf("scalar fields differ: %+v vs %+v", a, b)
	}
	if fmt.Sprint(a.Witness) != fmt.Sprint(b.Witness) || fmt.Sprint(a.ShortestWord) != fmt.Sprint(b.ShortestWord) {
		return fmt.Errorf("word fields differ")
	}
	var an, bn bytes.Buffer
	if _, err := a.RewritingNFA.WriteTo(&an); err != nil {
		return err
	}
	if _, err := b.RewritingNFA.WriteTo(&bn); err != nil {
		return err
	}
	if an.String() != bn.String() {
		return fmt.Errorf("NFA differs:\n%s\nvs\n%s", an.String(), bn.String())
	}
	var ad, bd bytes.Buffer
	if _, err := a.MinimalDFA.WriteTo(&ad); err != nil {
		return err
	}
	if _, err := b.MinimalDFA.WriteTo(&bd); err != nil {
		return err
	}
	if ad.String() != bd.String() {
		return fmt.Errorf("DFA differs:\n%s\nvs\n%s", ad.String(), bd.String())
	}
	return nil
}

// TestPlanCodecRoundTripProperty: Encode→Decode is the identity (up to
// the automata codec's own symbol renumbering, which a double round
// trip absorbs), and encoding is deterministic.
func TestPlanCodecRoundTripProperty(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 50
	}
	r := rand.New(rand.NewSource(51))
	for i := 0; i < iters; i++ {
		sp := randomStoredPlan(r)
		data, err := EncodePlan(sp)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", i, err)
		}
		back, err := DecodePlan(data)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		data2, err := EncodePlan(back)
		if err != nil {
			t.Fatalf("iter %d: re-encode: %v", i, err)
		}
		back2, err := DecodePlan(data2)
		if err != nil {
			t.Fatalf("iter %d: second decode: %v", i, err)
		}
		if err := equalPlans(back, back2); err != nil {
			t.Fatalf("iter %d: round trip not stable: %v", i, err)
		}
		data3, err := EncodePlan(back2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data2, data3) {
			t.Fatalf("iter %d: encoding not deterministic", i)
		}
	}
}

// TestPlanCodecTruncationProperty: every strict prefix of a valid
// envelope must fail with *CorruptError — the length prefix plus
// checksum makes ANY truncation detectable, unlike the text codec
// where a prefix can be a valid smaller automaton.
func TestPlanCodecTruncationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for i := 0; i < 20; i++ {
		data, err := EncodePlan(randomStoredPlan(r))
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut++ {
			sp, err := DecodePlan(data[:cut])
			if err == nil {
				t.Fatalf("iter %d: truncation at %d/%d decoded successfully", i, cut, len(data))
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("iter %d cut %d: err = %v, want *CorruptError", i, cut, err)
			}
			if sp != nil {
				t.Fatalf("iter %d cut %d: non-nil plan alongside error", i, cut)
			}
		}
	}
}

// TestPlanCodecBitFlipProperty: flipping any single bit of a valid
// envelope must fail decoding — the checksum covers the body, the
// magic pins the header, and the length field either breaks framing or
// the checksum. A flipped envelope may NEVER decode into a different
// plan silently.
func TestPlanCodecBitFlipProperty(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 10; i++ {
		sp := randomStoredPlan(r)
		data, err := EncodePlan(sp)
		if err != nil {
			t.Fatal(err)
		}
		trials := 200
		if testing.Short() {
			trials = 40
		}
		for j := 0; j < trials; j++ {
			pos, bit := r.Intn(len(data)), byte(1)<<uint(r.Intn(8))
			flipped := append([]byte(nil), data...)
			flipped[pos] ^= bit
			back, err := DecodePlan(flipped)
			if err == nil {
				t.Fatalf("iter %d: flipped bit %d of byte %d decoded successfully (plan %+v)", i, bit, pos, back)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("iter %d: bit flip surfaced as %v, want *CorruptError", i, err)
			}
		}
	}
}

// TestPlanCodecGarbageHeaders: adversarial headers fail cleanly before
// any large allocation.
func TestPlanCodecGarbageHeaders(t *testing.T) {
	huge := make([]byte, 16)
	copy(huge, magic[:])
	for i := 8; i < 16; i++ {
		huge[i] = 0xff // declared body length ~2^64
	}
	wrongVersion := append([]byte(nil), magic[:]...)
	wrongVersion[7] = Version + 1
	for _, tc := range []struct {
		name  string
		input []byte
	}{
		{"empty", nil},
		{"short magic", []byte("RWP")},
		{"wrong magic", []byte("NOTAPLAN12345678")},
		{"wrong version", append(wrongVersion, make([]byte, 8)...)},
		{"huge declared length", huge},
		{"zero body", append(append([]byte(nil), magic[:]...), make([]byte, 8)...)},
	} {
		sp, err := DecodePlan(tc.input)
		if err == nil {
			t.Fatalf("%s: decoded successfully: %+v", tc.name, sp)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want *CorruptError", tc.name, err)
		}
	}
}

// TestPlanCodecTrailingGarbage: bytes after a valid envelope are
// rejected by DecodePlan (files are exactly one envelope).
func TestPlanCodecTrailingGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	data, err := EncodePlan(randomStoredPlan(r))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePlan(append(data, 'x')); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: %v, want *CorruptError", err)
	}
}
