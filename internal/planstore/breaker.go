package planstore

import (
	"sync"
	"time"
)

// breaker is the store's consecutive-error circuit breaker: after
// threshold consecutive I/O failures the store stops touching the disk
// for a cooldown, failing every operation fast with ErrBreakerOpen so a
// sick disk degrades the engine to in-memory compiles instead of
// stalling every request behind hanging syscalls. After the cooldown
// the next operation is allowed through as a probe: its success closes
// the breaker, its failure re-opens it for another cooldown.
//
// Corrupt entries do NOT trip the breaker — corruption is a data
// problem the quarantine path owns; the breaker watches for an
// unhealthy device (EIO, ENOSPC, permission loss).
type breaker struct {
	mu sync.Mutex
	// threshold <= 0 disables the breaker entirely.
	threshold int
	cooldown  time.Duration
	// now is a test seam; nil means time.Now.
	now func() time.Time

	consecutive int
	openUntil   time.Time
	opens       int64
}

func (b *breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// allow reports whether an operation may touch the disk now. While the
// breaker is open (within the cooldown) it returns false; once the
// cooldown elapses, operations flow again as probes until the next
// failure decides.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openUntil.IsZero() || !b.clock().Before(b.openUntil)
}

// success records a healthy operation, closing the breaker and
// resetting the consecutive-failure count.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.openUntil = time.Time{}
}

// failure records an I/O failure and reports whether this one opened
// (or re-opened) the breaker, so the caller can count the transition on
// its metrics outside the lock.
func (b *breaker) failure() (opened bool) {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive < b.threshold {
		return false
	}
	wasClosed := b.openUntil.IsZero() || !b.clock().Before(b.openUntil)
	b.openUntil = b.clock().Add(b.cooldown)
	if wasClosed {
		b.opens++
	}
	return wasClosed
}

// snapshot returns (open-now, total open transitions).
func (b *breaker) snapshot() (bool, int64) {
	if b.threshold <= 0 {
		return false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && b.clock().Before(b.openUntil), b.opens
}
