package planstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/obs"
)

// testPlan builds a StoredPlan with a small real rewriting automaton
// (the Example 2 shape e2*·e1·e3* hand-built) under the given key.
func testPlan(key string) *StoredPlan {
	a := alphabet.New()
	e1, e2, e3 := a.Intern("e1"), a.Intern("e2"), a.Intern("e3")

	n := automata.NewNFA(a)
	n.AddStates(2)
	n.SetStart(0)
	n.SetAccept(1, true)
	n.AddTransition(0, e2, 0)
	n.AddTransition(0, e1, 1)
	n.AddTransition(1, e3, 1)

	d := automata.NewDFA(a)
	d.AddState()
	d.AddState()
	d.SetStart(0)
	d.SetAccept(1, true)
	d.SetTransition(0, e2, 0)
	d.SetTransition(0, e1, 1)
	d.SetTransition(1, e3, 1)

	return &StoredPlan{
		Key:             key,
		Kind:            "regex",
		Rewriting:       "e2*·e1·e3*",
		Verdict:         1, // exact
		ShortestWord:    []string{"e1"},
		HasShortestWord: true,
		States:          42,
		RewritingNFA:    n,
		MinimalDFA:      d,
	}
}

func testKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func openTestStore(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), append([]Option{WithMetrics(obs.NewRegistry()), WithoutSync()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := openTestStore(t)
	key := testKey(1)
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	sp := testPlan(key)
	if err := s.Put(sp); err != nil {
		t.Fatal(err)
	}
	back, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rewriting != sp.Rewriting || back.Verdict != sp.Verdict || back.States != sp.States {
		t.Fatalf("round trip changed the plan: %+v", back)
	}
	if !back.HasShortestWord || len(back.ShortestWord) != 1 || back.ShortestWord[0] != "e1" {
		t.Fatalf("shortest word lost: %+v", back)
	}
	if !back.MinimalDFA.AcceptsNames("e2", "e1", "e3") || back.MinimalDFA.AcceptsNames("e3") {
		t.Fatal("restored DFA denotes the wrong language")
	}
	if !back.RewritingNFA.AcceptsNames("e2", "e1", "e3") {
		t.Fatal("restored NFA denotes the wrong language")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A second store over the same directory sees the entry: this is
	// the warm-restart path.
	s2, err := Open(s.Dir(), WithMetrics(obs.NewRegistry()), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(key); err != nil {
		t.Fatalf("restart Get: %v", err)
	}
	keys, err := s2.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v", keys)
	}
}

// TestStoreQuarantine: a corrupt entry is moved aside, reported as
// *CorruptError, and the key behaves as recompilable (a fresh Put
// repairs it).
func TestStoreQuarantine(t *testing.T) {
	s := openTestStore(t)
	key := testKey(2)
	if err := s.Put(testPlan(key)); err != nil {
		t.Fatal(err)
	}
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = s.Get(key)
	var ce *CorruptError
	if !errors.As(err, &ce) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of corrupt entry: %v, want *CorruptError", err)
	}
	if _, statErr := os.Lstat(path); !errors.Is(statErr, os.ErrNotExist) {
		t.Fatal("corrupt entry still under its live key")
	}
	q, err := os.ReadDir(s.QuarantineDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0].Name() != filepath.Base(path) {
		t.Fatalf("quarantine contents: %v", q)
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The key is now a clean miss, and a fresh Put repairs it.
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after quarantine: %v, want ErrNotFound", err)
	}
	if err := s.Put(testPlan(key)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); err != nil {
		t.Fatalf("Get after repair: %v", err)
	}
}

// TestStoreKeyMismatch: an envelope stored under the wrong file name
// (content-addressing violation) is corrupt, not served.
func TestStoreKeyMismatch(t *testing.T) {
	s := openTestStore(t)
	good, evil := testKey(3), testKey(4)
	if err := s.Put(testPlan(good)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.entryPath(good))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.entryPath(evil)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.entryPath(evil), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(evil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get under mismatched key: %v, want ErrCorrupt", err)
	}
}

// TestStoreBreaker: consecutive I/O errors open the breaker; while
// open every operation fails fast with ErrBreakerOpen; after the
// cooldown a successful probe closes it again.
func TestStoreBreaker(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	failing := true
	hook := func(op, path string, data []byte) ([]byte, error) {
		if failing && op == "open" {
			return nil, errors.New("disk on fire")
		}
		return data, nil
	}
	s := openTestStore(t, WithBreaker(3, time.Second), WithHook(hook), withClock(clock))
	key := testKey(5)
	for i := 0; i < 3; i++ {
		if _, err := s.Get(key); errors.Is(err, ErrNotFound) || err == nil {
			t.Fatalf("Get %d should have failed with an I/O error", i)
		}
	}
	st := s.Stats()
	if !st.BreakerOpen || st.BreakerOpens != 1 || st.IOErrors != 3 {
		t.Fatalf("stats after 3 failures: %+v", st)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Get with open breaker: %v, want ErrBreakerOpen", err)
	}
	if err := s.Put(testPlan(key)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Put with open breaker: %v, want ErrBreakerOpen", err)
	}
	if _, err := s.Keys(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Keys with open breaker: %v, want ErrBreakerOpen", err)
	}
	if st := s.Stats(); st.BreakerRejected != 3 {
		t.Fatalf("breaker rejected: %+v", st)
	}
	// Cooldown elapses; the disk has recovered; the probe closes the
	// breaker.
	now = now.Add(2 * time.Second)
	failing = false
	if err := s.Put(testPlan(key)); err != nil {
		t.Fatalf("probe Put after cooldown: %v", err)
	}
	if st := s.Stats(); st.BreakerOpen {
		t.Fatalf("breaker still open after successful probe: %+v", st)
	}
	if _, err := s.Get(key); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}

// TestStoreBreakerReopens: a failing probe re-opens the breaker for
// another cooldown without waiting for threshold fresh failures.
func TestStoreBreakerReopens(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	hook := func(op, path string, data []byte) ([]byte, error) {
		if op == "open" {
			return nil, errors.New("still on fire")
		}
		return data, nil
	}
	s := openTestStore(t, WithBreaker(2, time.Second), WithHook(hook), withClock(clock))
	key := testKey(6)
	s.Get(key)
	s.Get(key)
	if st := s.Stats(); !st.BreakerOpen || st.BreakerOpens != 1 {
		t.Fatalf("stats: %+v", st)
	}
	now = now.Add(2 * time.Second)
	if _, err := s.Get(key); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe should reach the disk and fail: %v", err)
	}
	st := s.Stats()
	if !st.BreakerOpen || st.BreakerOpens != 2 {
		t.Fatalf("breaker did not re-open after failed probe: %+v", st)
	}
}

// TestStoreTempFilesInvisible: a leftover temp file (crash mid-write)
// is never listed as a key and never loaded.
func TestStoreTempFilesInvisible(t *testing.T) {
	s := openTestStore(t)
	key := testKey(7)
	if err := s.Put(testPlan(key)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a torn temp file next to the entry.
	dir := filepath.Dir(s.entryPath(key))
	if err := os.WriteFile(filepath.Join(dir, key+".plan.tmp123"), []byte("RWPLAN\x00\x01torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys sees temp files: %v", keys)
	}
	if _, err := s.Get(key); err != nil {
		t.Fatalf("entry unaffected by stray temp file: %v", err)
	}
}

// TestStoreMetricsMirrored: every counter lands on the registry under
// its plan_store.* name.
func TestStoreMetricsMirrored(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), WithMetrics(reg), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(8)
	s.Get(key) // miss
	s.Put(testPlan(key))
	s.Get(key) // hit
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"plan_store.hits":   1,
		"plan_store.misses": 1,
		"plan_store.writes": 1,
	} {
		if snap[name] != want {
			t.Errorf("%s = %d, want %d (snapshot %v)", name, snap[name], want, snap)
		}
	}
}
