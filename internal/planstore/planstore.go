// Package planstore is the crash-safe persistent plan store: a
// content-addressed, disk-backed map from the engine's canonical
// SHA-256 plan keys to compiled plans, serialized as checksummed binary
// envelopes (codec.go). Compiled plans are the most valuable bytes in
// the system — the rewriting construction is doubly exponential
// (Theorem 8), so a plan that survives a restart saves exactly the cost
// the serving engine exists to amortize.
//
// The durability contract has two halves:
//
//   - Writes are atomic: an entry is written to a temp file in the
//     target directory, fsynced, then renamed into place (and the
//     directory fsynced), so a crash at ANY instant leaves either the
//     previous state or the complete new entry — never a torn file
//     under a live key.
//
//   - Reads are verified: every load re-hashes the envelope body
//     against its stored SHA-256 before a single byte is parsed. A
//     mismatch (bit rot, a foreign file, an old format version) moves
//     the entry into the quarantine directory and reports
//     *CorruptError; a corrupt plan is never served and never blocks
//     the key — the caller recompiles and the next write replaces it.
//
// Failure is a first-class input: every operation can be declined by a
// consecutive-error circuit breaker (breaker.go) so a sick disk
// degrades the engine to in-memory compiles instead of queueing
// requests behind hanging I/O, and every disk touch runs through an
// injectable hook so the fault-injection sweeps (internal/budget/
// faultinject) can drive torn writes, bit flips, short reads, ENOSPC
// and open failures through the whole degradation ladder.
package planstore

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"regexrw/internal/obs"
)

// ErrNotFound reports a key with no stored entry; the caller compiles.
var ErrNotFound = errors.New("planstore: plan not found")

// ErrCorrupt is matched by errors.Is against any *CorruptError. The
// offending entry has already been quarantined when a store load
// reports it.
var ErrCorrupt = errors.New("planstore: corrupt entry")

// ErrBreakerOpen reports that the circuit breaker is open: the store
// declined to touch the disk. Callers degrade to compiling in memory.
var ErrBreakerOpen = errors.New("planstore: circuit breaker open")

// Hook intercepts one disk operation for fault injection: op is one of
// the faultinject.IO* site names, data carries the payload on read and
// write sites (the hook may replace it to model corruption), and a
// returned error fails the operation. Production stores run without a
// hook; tests install one via WithHook.
type Hook func(op, path string, data []byte) ([]byte, error)

// Store is the disk-backed plan store. A Store is safe for concurrent
// use; every operation is independent (the atomicity unit is one
// entry).
type Store struct {
	dir     string
	hook    Hook
	breaker breaker
	reg     *obs.Registry
	syncIO  bool

	hits, misses, writes atomic.Int64
	ioErrors             atomic.Int64
	corrupt, quarantined atomic.Int64
	breakerRejected      atomic.Int64
}

// Option configures a Store.
type Option func(*Store)

// WithBreaker sets the circuit breaker: after threshold consecutive
// I/O errors the store fails fast with ErrBreakerOpen for cooldown.
// threshold <= 0 disables the breaker. The default is 5 failures, 2s.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(s *Store) { s.breaker.threshold, s.breaker.cooldown = threshold, cooldown }
}

// WithMetrics sets the registry receiving the plan_store.* counters;
// the default is obs.Default.
func WithMetrics(r *obs.Registry) Option { return func(s *Store) { s.reg = r } }

// WithHook installs the fault-injection hook (tests only).
func WithHook(h Hook) Option { return func(s *Store) { s.hook = h } }

// WithoutSync disables the fsync calls (temp file and directory). Only
// for tests that hammer the store and accept losing the
// crash-durability half of the contract; the checksum half still holds.
func WithoutSync() Option { return func(s *Store) { s.syncIO = false } }

// withClock is the breaker's test seam.
func withClock(now func() time.Time) Option { return func(s *Store) { s.breaker.now = now } }

// Open initializes the store rooted at dir, creating the layout
//
//	dir/plans/<key[:2]>/<key>.plan
//	dir/quarantine/
//
// on first use. Opening never scans the entries — a store over a huge
// plan population opens in O(1); Keys walks lazily.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:     dir,
		reg:     obs.Default,
		syncIO:  true,
		breaker: breaker{threshold: 5, cooldown: 2 * time.Second},
	}
	for _, o := range opts {
		o(s)
	}
	for _, sub := range []string{s.plansDir(), s.QuarantineDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("planstore: open %s: %w", dir, err)
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) plansDir() string { return filepath.Join(s.dir, "plans") }

// QuarantineDir returns the directory corrupt entries are moved into.
func (s *Store) QuarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// entryPath shards entries by the first two hex characters of the key
// so a million-plan store never puts a million names in one directory.
func (s *Store) entryPath(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.plansDir(), shard, key+".plan")
}

// Stats is a point-in-time snapshot of the store's counters, mirrored
// one-for-one on the plan_store.* metrics.
type Stats struct {
	// Hits/Misses count verified loads and absent keys.
	Hits   int64 `json:"hits,omitempty"`
	Misses int64 `json:"misses,omitempty"`
	// Writes counts fully persisted (fsynced and renamed) entries.
	Writes int64 `json:"writes,omitempty"`
	// IOErrors counts failed disk operations (open/read/write/sync/
	// rename), the signal the breaker watches.
	IOErrors int64 `json:"io_errors,omitempty"`
	// Corrupt counts entries that failed checksum or structural
	// verification; Quarantined counts those successfully moved aside.
	Corrupt     int64 `json:"corrupt,omitempty"`
	Quarantined int64 `json:"quarantined,omitempty"`
	// BreakerOpen reports whether the breaker is open right now;
	// BreakerOpens counts open transitions; BreakerRejected counts
	// operations declined while open.
	BreakerOpen     bool  `json:"breaker_open,omitempty"`
	BreakerOpens    int64 `json:"breaker_opens,omitempty"`
	BreakerRejected int64 `json:"breaker_rejected,omitempty"`
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	open, opens := s.breaker.snapshot()
	return Stats{
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Writes:          s.writes.Load(),
		IOErrors:        s.ioErrors.Load(),
		Corrupt:         s.corrupt.Load(),
		Quarantined:     s.quarantined.Load(),
		BreakerOpen:     open,
		BreakerOpens:    opens,
		BreakerRejected: s.breakerRejected.Load(),
	}
}

func (s *Store) count(c *atomic.Int64, name string) {
	c.Add(1)
	s.reg.Counter(name).Inc()
}

// io runs the fault hook for one site; identity without a hook.
func (s *Store) io(op, path string, data []byte) ([]byte, error) {
	if s.hook == nil {
		return data, nil
	}
	return s.hook(op, path, data)
}

// fail records an I/O error on the counters and the breaker and wraps
// it with the operation context.
func (s *Store) fail(op string, err error) error {
	s.count(&s.ioErrors, "plan_store.io_errors")
	if s.breaker.failure() {
		s.reg.Counter("plan_store.breaker_open").Inc()
	}
	return fmt.Errorf("planstore: %s: %w", op, err)
}

// rejectIfOpen fails fast with ErrBreakerOpen while the breaker is
// open.
func (s *Store) rejectIfOpen() error {
	if s.breaker.allow() {
		return nil
	}
	s.count(&s.breakerRejected, "plan_store.breaker_rejected")
	return ErrBreakerOpen
}

// Get loads and verifies the entry for key. ErrNotFound is a clean
// miss; *CorruptError means the entry failed verification and has been
// quarantined (the caller recompiles); ErrBreakerOpen and other errors
// are I/O-level degradation — the caller compiles in memory and moves
// on.
func (s *Store) Get(key string) (*StoredPlan, error) {
	if err := s.rejectIfOpen(); err != nil {
		return nil, err
	}
	path := s.entryPath(key)
	if _, err := s.io("open", path, nil); err != nil {
		return nil, s.fail("open "+path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.count(&s.misses, "plan_store.misses")
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, s.fail("open "+path, err)
	}
	data, err := io.ReadAll(io.LimitReader(f, maxEnvelopeBody+4096))
	f.Close()
	if err != nil {
		return nil, s.fail("read "+path, err)
	}
	if data, err = s.io("read", path, data); err != nil {
		return nil, s.fail("read "+path, err)
	}
	s.breaker.success()
	sp, err := DecodePlan(data)
	if err == nil && sp.Key != key {
		err = &CorruptError{Reason: fmt.Sprintf("entry key %.12s… does not match file key %.12s…", sp.Key, key)}
	}
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
			s.count(&s.corrupt, "plan_store.corrupt")
			s.quarantine(path)
			return nil, ce
		}
		return nil, err
	}
	s.count(&s.hits, "plan_store.hits")
	return sp, nil
}

// Put atomically persists the plan under its key: temp file in the
// entry's own directory, write, fsync, rename, directory fsync. A
// crash at any point leaves the previous entry (or no entry) intact —
// a torn write can never be published. Put overwrites an existing
// entry (plans are content-addressed, so an overwrite is byte-identical
// in practice; after quarantine it is the repair path).
func (s *Store) Put(sp *StoredPlan) error {
	if sp == nil || sp.Key == "" {
		return fmt.Errorf("planstore: put: plan has no key")
	}
	if err := s.rejectIfOpen(); err != nil {
		return err
	}
	data, err := EncodePlan(sp)
	if err != nil {
		return fmt.Errorf("planstore: put %s: %w", sp.Key, err)
	}
	path := s.entryPath(sp.Key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return s.fail("mkdir "+dir, err)
	}
	if _, err := s.io("open", path, nil); err != nil {
		return s.fail("open "+path, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return s.fail("create temp for "+path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	if data, err = s.io("write", tmp.Name(), data); err != nil {
		tmp.Close()
		return s.fail("write "+tmp.Name(), err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return s.fail("write "+tmp.Name(), err)
	}
	if _, err := s.io("sync", tmp.Name(), nil); err != nil {
		tmp.Close()
		return s.fail("sync "+tmp.Name(), err)
	}
	if s.syncIO {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return s.fail("sync "+tmp.Name(), err)
		}
	}
	if err := tmp.Close(); err != nil {
		return s.fail("close "+tmp.Name(), err)
	}
	if _, err := s.io("rename", path, nil); err != nil {
		return s.fail("rename "+path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return s.fail("rename "+path, err)
	}
	if s.syncIO {
		if err := syncDir(dir); err != nil {
			return s.fail("sync dir "+dir, err)
		}
	}
	s.breaker.success()
	s.count(&s.writes, "plan_store.writes")
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// quarantine moves a corrupt entry aside so it is never loaded again
// but stays available for postmortem. Collisions get a numeric suffix.
// Quarantine failures degrade to deletion — a corrupt entry must not
// stay under a live key either way — and deletion failures are only
// counted: the checksum check already guarantees the entry can never
// be served.
func (s *Store) quarantine(path string) {
	base := filepath.Base(path)
	dst := filepath.Join(s.QuarantineDir(), base)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.QuarantineDir(), fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(path, dst); err != nil {
		if rmErr := os.Remove(path); rmErr != nil {
			s.count(&s.ioErrors, "plan_store.io_errors")
			return
		}
	}
	s.count(&s.quarantined, "plan_store.quarantined")
}

// Keys lists the keys with a stored entry, sorted, by walking the
// shard directories. Unparseable file names are skipped — Get's
// verification is the integrity gate, Keys only enumerates.
func (s *Store) Keys() ([]string, error) {
	if err := s.rejectIfOpen(); err != nil {
		return nil, err
	}
	shards, err := os.ReadDir(s.plansDir())
	if err != nil {
		return nil, s.fail("readdir "+s.plansDir(), err)
	}
	var keys []string
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.plansDir(), shard.Name()))
		if err != nil {
			return nil, s.fail("readdir "+shard.Name(), err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".plan") {
				continue
			}
			keys = append(keys, strings.TrimSuffix(name, ".plan"))
		}
	}
	s.breaker.success()
	sort.Strings(keys)
	return keys, nil
}

// Len counts the stored entries (one directory walk).
func (s *Store) Len() (int, error) {
	keys, err := s.Keys()
	return len(keys), err
}
