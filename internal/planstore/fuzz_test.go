package planstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzReadPlan: ReadPlan on arbitrary bytes must either fail with an
// error (corrupt envelopes specifically with *CorruptError) or decode
// a plan that re-encodes to a valid envelope — and must never panic.
// Mirrors the automata codec fuzzers; committed seeds live under
// testdata/fuzz/FuzzReadPlan.
func FuzzReadPlan(f *testing.F) {
	r := rand.New(rand.NewSource(55))
	valid, err := EncodePlan(randomStoredPlan(r))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(magic[:])
	truncated := valid[:len(valid)-5]
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("states 3\nstart 0\naccept 2\n")) // text automata codec, not an envelope
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			if sp != nil {
				t.Fatal("non-nil plan alongside error")
			}
			return
		}
		// Anything the decoder accepts must survive a re-encode →
		// re-decode cycle: the store never persists a plan it could not
		// read back.
		out, err := EncodePlan(sp)
		if err != nil {
			t.Fatalf("accepted plan does not re-encode: %v", err)
		}
		if _, err := DecodePlan(out); err != nil {
			t.Fatalf("re-encoded plan does not decode: %v", err)
		}
	})
}

// TestReadPlanFuzzSeeds re-runs the committed interesting inputs as a
// plain test so they are exercised on every `go test`, not only under
// -fuzz.
func TestReadPlanFuzzSeeds(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	valid, err := EncodePlan(randomStoredPlan(r))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlan(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid seed rejected: %v", err)
	}
	for _, data := range [][]byte{{}, magic[:], valid[:len(valid)-5], bytes.Repeat([]byte{0xff}, 64)} {
		if _, err := ReadPlan(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("seed %q: err = %v, want *CorruptError", data, err)
		}
	}
}
