// Package par provides the bounded worker pool used to parallelize the
// per-view stages of the rewriting pipeline (transfer-automaton
// construction in internal/core, view grounding in internal/rpq).
//
// The pool is deliberately tiny: a shared atomic index hands out item
// indices, a context option carries the worker count, and the first
// error — in completion order — cancels the rest. Callers that need
// deterministic output order write into index-addressed slots and merge
// after ForEach returns; the pool itself guarantees nothing about
// execution order.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"regexrw/internal/obs"
)

type workersKey struct{}

// WithWorkers returns a context that requests n workers for ForEach
// calls downstream. n <= 1 forces sequential execution (useful for the
// sequential baseline in benchmarks and the differential oracle).
func WithWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, workersKey{}, n)
}

// Workers returns the worker count carried by ctx, defaulting to
// runtime.GOMAXPROCS(0) when none was set.
func Workers(ctx context.Context) int {
	if n, ok := ctx.Value(workersKey{}).(int); ok && n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for every i in [0, n), using up to
// Workers(ctx) goroutines. It returns the first error in completion
// order; once an error occurs the derived context passed to fn is
// cancelled, so long-running items can abort cooperatively. With one
// worker (or one item) everything runs on the calling goroutine and the
// first error returns immediately — the sequential semantics callers
// had before parallelization.
//
// The returned error is the root cause: workers that abort because the
// derived context was cancelled report context errors, but those can
// only be recorded after the triggering error already was.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := Workers(ctx)
	if workers > n {
		workers = n
	}
	// When tracing is on, the fan-out gets its own span ("par.foreach")
	// recording the pool shape and — on a wall-clock tracer — the summed
	// worker busy time, from which utilization is busy_ns / (dur_us·1000
	// · workers). fn runs under the span's context, so per-item spans
	// nest beneath it. With no tracer StartSpan returns (ctx, nil) and
	// everything below is nil-check no-ops.
	ctx, span := obs.StartSpan(ctx, "par.foreach")
	defer span.End()
	span.SetAttr("workers", int64(workers))
	span.SetAttr("items", int64(n))
	var busy atomic.Int64
	timed := span.Timed()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if timed {
				start := time.Now()
				defer func() { busy.Add(int64(time.Since(start))) }()
			}
			for { //ctxcheck:ignore the loop consults wctx (derived from ctx) every iteration
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := wctx.Err(); err != nil {
					record(err)
					return
				}
				if err := fn(wctx, i); err != nil {
					record(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if timed {
		span.SetTimeAttr("busy_ns", busy.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
