package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	if got, want := Workers(context.Background()), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers(background) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestWithWorkers(t *testing.T) {
	ctx := WithWorkers(context.Background(), 3)
	if got := Workers(ctx); got != 3 {
		t.Fatalf("Workers = %d, want 3", got)
	}
	// Non-positive requests fall back to the default.
	if got, want := Workers(WithWorkers(context.Background(), 0)), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers(0) = %d, want %d", got, want)
	}
}

func TestForEachVisitsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 100
		var visited [n]atomic.Int64
		ctx := WithWorkers(context.Background(), workers)
		if err := ForEach(ctx, n, func(ctx context.Context, i int) error {
			visited[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range visited {
			if c := visited[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestForEachReturnsRootCause(t *testing.T) {
	rootCause := errors.New("boom")
	for _, workers := range []int{1, 4} {
		ctx := WithWorkers(context.Background(), workers)
		err := ForEach(ctx, 50, func(ctx context.Context, i int) error {
			if i == 7 {
				return rootCause
			}
			// Give the failing item a chance to complete first so later
			// items observe the cancelled context.
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return nil
		})
		if !errors.Is(err, rootCause) {
			t.Fatalf("workers=%d: error = %v, want root cause", workers, err)
		}
	}
}

func TestForEachCancelStopsWork(t *testing.T) {
	ctx, cancel := context.WithCancel(WithWorkers(context.Background(), 4))
	var started atomic.Int64
	err := ForEach(ctx, 1000, func(ctx context.Context, i int) error {
		if started.Add(1) == 3 {
			cancel()
		}
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the pool: %d items started", n)
	}
}

func TestForEachSequentialStopsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls int
	ctx := WithWorkers(context.Background(), 1)
	err := ForEach(ctx, 10, func(ctx context.Context, i int) error {
		calls++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if calls != 3 {
		t.Fatalf("sequential path ran %d items after the error, want stop at 3", calls)
	}
}
