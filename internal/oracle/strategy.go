package oracle

// Differential checks over the strategy dispatcher (internal/strategy):
// every adaptive decision has a forced ablation for each arm, and the
// arms are promised to differ only in speed. CheckStrategies verifies
// that promise pairwise on one instance:
//
//   - kernel: the pipeline under a forced-sparse and a forced-dense
//     kernel produces byte-identical automata — exact state numbering,
//     because both refinements compute the unique coarsest stable
//     partition and the quotient is canonically renumbered;
//   - fan-out: the adaptive, forced-sequential and forced-parallel
//     rewritings are byte-identical (the deterministic index-slot merge
//     already makes parallel ≡ sequential; adaptive must land on one of
//     them, never on a third behavior);
//   - exactness: the materialized and on-the-fly Theorem 6 checks agree
//     on the verdict and, for inexact rewritings, on the witness length
//     (the contract fixes "a shortest word", not which one — though
//     both arms use the same sorted-symbol BFS rule and in practice
//     return the same word).
//
// Like CheckInstance, instances that blow the size cap are skipped with
// ErrSkipped and tallied on the oracle.skipped counter.

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/par"
	"regexrw/internal/strategy"
)

// CheckStrategies runs the strategy-differential properties on the
// instance. Verdict accounting mirrors CheckInstance: nil on success
// (oracle.checked), ErrSkipped at the size cap (oracle.skipped), any
// other error is a bug.
func CheckStrategies(ctx context.Context, inst *core.Instance, cfg Config) error {
	err := checkStrategies(ctx, inst, cfg)
	switch {
	case err == nil:
		oracleCounters.checked.Inc()
	case errors.Is(err, ErrSkipped):
		oracleCounters.skipped.Inc()
	}
	return err
}

func checkStrategies(ctx context.Context, inst *core.Instance, cfg Config) error {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultConfig().MaxStates
	}
	capped := func(parent context.Context) context.Context {
		return budget.With(parent, budget.New(budget.MaxStates(cfg.MaxStates)))
	}
	skippedOr := func(err error) error {
		var ex *budget.ExceededError
		if errors.As(err, &ex) {
			return fmt.Errorf("%w: %w", ErrSkipped, err)
		}
		return err
	}
	run := func(scfg strategy.Config, workers int) (*core.Rewriting, error) {
		rctx := strategy.With(capped(ctx), scfg)
		if workers > 0 {
			rctx = par.WithWorkers(rctx, workers)
		}
		return core.MaximalRewritingContext(rctx, inst)
	}

	// Kernel pair: forced sparse vs forced dense, single worker so the
	// only varying dimension is the kernel. Byte-identity of the DFAs
	// (Ad, Auto) pins the exact state numbering, not mere isomorphism.
	rSparse, err := run(strategy.Config{Kernel: strategy.KernelForceSparse}, 1)
	if err != nil {
		return skippedOr(err)
	}
	rDense, err := run(strategy.Config{Kernel: strategy.KernelForceDense}, 1)
	if err != nil {
		return skippedOr(err)
	}
	if err := sameDFA("Ad (dense vs sparse kernel)", rSparse.Ad, rDense.Ad); err != nil {
		return err
	}
	if err := sameNFA("APrime (dense vs sparse kernel)", rSparse.APrime, rDense.APrime); err != nil {
		return err
	}
	if err := sameDFA("Auto (dense vs sparse kernel)", rSparse.Auto, rDense.Auto); err != nil {
		return err
	}

	// Fan-out triple: adaptive vs forced-sequential vs forced-parallel.
	rAdaptive, err := run(strategy.Config{}, cfg.Workers)
	if err != nil {
		return skippedOr(err)
	}
	rSeq, err := run(strategy.Config{FanOut: strategy.FanOutForceSequential}, cfg.Workers)
	if err != nil {
		return skippedOr(err)
	}
	rPar, err := run(strategy.Config{FanOut: strategy.FanOutForceParallel}, cfg.Workers)
	if err != nil {
		return skippedOr(err)
	}
	for _, pair := range []struct {
		what  string
		other *core.Rewriting
	}{
		{"forced-sequential", rSeq},
		{"forced-parallel", rPar},
	} {
		if err := sameNFA("APrime (adaptive vs "+pair.what+")", rAdaptive.APrime, pair.other.APrime); err != nil {
			return err
		}
		if err := sameDFA("Auto (adaptive vs "+pair.what+")", rAdaptive.Auto, pair.other.Auto); err != nil {
			return err
		}
	}

	// Exactness pair: materialized vs on-the-fly complement. Both arms
	// must return the same verdict; when inexact, both witnesses are
	// shortest words of L(E0) \ exp(L(R)), so their lengths must match.
	exFly, wFly, err := exactness(capped(ctx), rAdaptive, strategy.ExactnessForceOnTheFly)
	if err != nil {
		return skippedOr(err)
	}
	exMat, wMat, err := exactness(capped(ctx), rAdaptive, strategy.ExactnessForceMaterialized)
	if err != nil {
		return skippedOr(err)
	}
	if exFly != exMat {
		return fmt.Errorf("oracle: exactness arms disagree: on-the-fly=%v materialized=%v (instance %s)",
			exFly, exMat, inst)
	}
	if !exFly && len(wFly) != len(wMat) {
		return fmt.Errorf("oracle: exactness witnesses have different lengths: on-the-fly %v (%d) vs materialized %v (%d) (instance %s)",
			symbolNames(inst, wFly), len(wFly), symbolNames(inst, wMat), len(wMat), inst)
	}
	return nil
}

func exactness(ctx context.Context, r *core.Rewriting, mode strategy.ExactnessMode) (bool, []alphabet.Symbol, error) {
	return r.IsExactContext(strategy.With(ctx, strategy.Config{Exactness: mode}))
}

// sameDFA compares the canonical serializations of two DFAs and reports
// a diff-style error on mismatch — the DFA codec writes states in id
// order, so byte equality is exact state-numbering equality.
func sameDFA(what string, a, b *automata.DFA) error {
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		return fmt.Errorf("oracle: serialize %s (first arm): %w", what, err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		return fmt.Errorf("oracle: serialize %s (second arm): %w", what, err)
	}
	if ba.String() != bb.String() {
		return fmt.Errorf("oracle: %s differs between arms:\n--- first ---\n%s\n--- second ---\n%s",
			what, ba.String(), bb.String())
	}
	return nil
}
