package oracle

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"regexrw/internal/core"
	"regexrw/internal/workload"
)

// TestRandomInstances sweeps the oracle over random instances with a
// fixed seed: soundness (Theorem 2), parallel/sequential identity and
// the observability cross-validation must hold on every instance that
// fits the size cap. 200 instances in full mode (the acceptance bar),
// 40 under -short.
func TestRandomInstances(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	r := rand.New(rand.NewSource(20260805))
	cfg := workload.InstanceConfig{AlphabetSize: 3, NumViews: 3, QueryDepth: 3, ViewDepth: 3}
	checkedBefore, skippedBefore := Verdicts()
	checked, skipped := 0, 0
	for i := 0; i < n; i++ {
		inst := workload.RandomInstance(r, cfg)
		err := CheckInstance(context.Background(), inst, DefaultConfig())
		switch {
		case err == nil:
			checked++
		case errors.Is(err, ErrSkipped):
			skipped++
		default:
			t.Fatalf("instance %d: %v\ninstance: %s", i, err, inst)
		}
	}
	t.Logf("oracle: %d checked, %d skipped (size cap)", checked, skipped)
	// The loop's local tally and the process-wide oracle.checked /
	// oracle.skipped counters must agree — the counters are what CI and
	// the -metrics flag report, so drift there is an observability bug.
	checkedAfter, skippedAfter := Verdicts()
	if got := checkedAfter - checkedBefore; got != int64(checked) {
		t.Errorf("oracle.checked counter advanced by %d, want %d", got, checked)
	}
	if got := skippedAfter - skippedBefore; got != int64(skipped) {
		t.Errorf("oracle.skipped counter advanced by %d, want %d", got, skipped)
	}
	// The cap must not hollow out the sweep. Skips used to vanish
	// silently; now any distribution where more than 20% of instances
	// blow the cap fails loudly so the cap (or the generator) gets
	// retuned instead of quietly proving less.
	if skipped*5 > n {
		t.Fatalf("%d/%d instances skipped at the size cap (>20%%); retune the cap or the instance distribution", skipped, n)
	}
}

// TestKnownExactInstance pins the oracle on the paper's Example 2
// instance, which is small and always gets a verdict.
func TestKnownExactInstance(t *testing.T) {
	inst, err := core.ParseInstance("(a.b)*", map[string]string{
		"v1": "a.b",
		"v2": "(a.b)*",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInstance(context.Background(), inst, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestSkipOnTinyCap checks the cap path: an instance that cannot fit in
// a handful of states reports ErrSkipped rather than an error or a hang.
func TestSkipOnTinyCap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	inst := workload.RandomInstance(r, workload.InstanceConfig{AlphabetSize: 3, NumViews: 3, QueryDepth: 4, ViewDepth: 4})
	_, skippedBefore := Verdicts()
	err := CheckInstance(context.Background(), inst, Config{MaxStates: 2})
	if !errors.Is(err, ErrSkipped) {
		t.Fatalf("err = %v, want ErrSkipped", err)
	}
	if _, skippedAfter := Verdicts(); skippedAfter != skippedBefore+1 {
		t.Fatalf("oracle.skipped = %d, want %d: skips must be counted, not silent", skippedAfter, skippedBefore+1)
	}
}

// TestWorkerCountIndependence runs the same instance at several worker
// counts; the check itself asserts byte-identical automata against the
// sequential reference.
func TestWorkerCountIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	cfg := workload.InstanceConfig{AlphabetSize: 3, NumViews: 4, QueryDepth: 3, ViewDepth: 3}
	inst := workload.RandomInstance(r, cfg)
	for _, workers := range []int{2, 3, 8} {
		err := CheckInstance(context.Background(), inst, Config{MaxStates: 50000, Workers: workers})
		if err != nil && !errors.Is(err, ErrSkipped) {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}
