package oracle

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"regexrw/internal/core"
	"regexrw/internal/workload"
)

// TestRandomInstances sweeps the oracle over random instances with a
// fixed seed: soundness (Theorem 2) and parallel/sequential identity
// must hold on every instance that fits the size cap. 200 instances in
// full mode (the acceptance bar), 40 under -short.
func TestRandomInstances(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	r := rand.New(rand.NewSource(20260805))
	cfg := workload.InstanceConfig{AlphabetSize: 3, NumViews: 3, QueryDepth: 3, ViewDepth: 3}
	checked, skipped := 0, 0
	for i := 0; i < n; i++ {
		inst := workload.RandomInstance(r, cfg)
		err := CheckInstance(context.Background(), inst, DefaultConfig())
		switch {
		case err == nil:
			checked++
		case errors.Is(err, ErrSkipped):
			skipped++
		default:
			t.Fatalf("instance %d: %v\ninstance: %s", i, err, inst)
		}
	}
	t.Logf("oracle: %d checked, %d skipped (size cap)", checked, skipped)
	// The cap must not hollow out the sweep: most random instances at
	// these sizes are small, so a majority of verdicts is expected.
	if checked < n/2 {
		t.Fatalf("only %d/%d instances got a verdict; size cap too tight for the distribution", checked, n)
	}
}

// TestKnownExactInstance pins the oracle on the paper's Example 2
// instance, which is small and always gets a verdict.
func TestKnownExactInstance(t *testing.T) {
	inst, err := core.ParseInstance("(a.b)*", map[string]string{
		"v1": "a.b",
		"v2": "(a.b)*",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInstance(context.Background(), inst, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestSkipOnTinyCap checks the cap path: an instance that cannot fit in
// a handful of states reports ErrSkipped rather than an error or a hang.
func TestSkipOnTinyCap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	inst := workload.RandomInstance(r, workload.InstanceConfig{AlphabetSize: 3, NumViews: 3, QueryDepth: 4, ViewDepth: 4})
	err := CheckInstance(context.Background(), inst, Config{MaxStates: 2})
	if !errors.Is(err, ErrSkipped) {
		t.Fatalf("err = %v, want ErrSkipped", err)
	}
}

// TestWorkerCountIndependence runs the same instance at several worker
// counts; the check itself asserts byte-identical automata against the
// sequential reference.
func TestWorkerCountIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	cfg := workload.InstanceConfig{AlphabetSize: 3, NumViews: 4, QueryDepth: 3, ViewDepth: 3}
	inst := workload.RandomInstance(r, cfg)
	for _, workers := range []int{2, 3, 8} {
		err := CheckInstance(context.Background(), inst, Config{MaxStates: 50000, Workers: workers})
		if err != nil && !errors.Is(err, ErrSkipped) {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}
