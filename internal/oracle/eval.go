package oracle

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/eval"
	"regexrw/internal/graph"
)

// CheckEvaluation runs the differential evaluation oracle on one
// (instance, database) pair. Three independent RPQ algorithms must
// produce set-identical answers for the query over the base graph:
//
//   - the frontier evaluator (internal/eval: product BFS with delta
//     frontiers and per-state visited bitsets);
//   - the retained naive reference (eval.ReferenceAllPairs: explicit
//     configuration graph closed by the Floyd–Warshall bit-matrix
//     product); and
//   - the map-based product BFS retained in internal/graph (DB.Eval).
//
// The same identity is then checked for the maximal rewriting
// evaluated over the view-image graph, and the rewriting's answers
// must be contained in the query's (Section 4 soundness), with
// equality whenever the rewriting is exact.
//
// Like CheckInstance, runs that blow past the size cap return an error
// wrapping ErrSkipped, and every call records its verdict on the
// process-wide oracle.checked / oracle.skipped counters.
func CheckEvaluation(ctx context.Context, inst *core.Instance, db *graph.DB, cfg Config) error {
	err := checkEvaluation(ctx, inst, db, cfg)
	switch {
	case err == nil:
		oracleCounters.checked.Inc()
	case errors.Is(err, ErrSkipped):
		oracleCounters.skipped.Inc()
	}
	return err
}

func checkEvaluation(ctx context.Context, inst *core.Instance, db *graph.DB, cfg Config) error {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultConfig().MaxStates
	}
	capped := func(parent context.Context) context.Context {
		return budget.With(parent, budget.New(budget.MaxStates(cfg.MaxStates)))
	}
	skippedOr := func(err error) error {
		var ex *budget.ExceededError
		if errors.As(err, &ex) {
			return fmt.Errorf("%w: %w", ErrSkipped, err)
		}
		return err
	}

	// Query over the base graph, three ways.
	qnfa := inst.QueryNFA()
	qdfa, err := automata.DeterminizeContext(capped(ctx), qnfa)
	if err != nil {
		return skippedOr(err)
	}
	qdfa = qdfa.Minimize().TrimPartial()
	qev, err := eval.New(qdfa, db)
	if err != nil {
		return err
	}
	frontier, err := qev.AllPairs(capped(ctx))
	if err != nil {
		return skippedOr(err)
	}
	reference, err := eval.ReferenceAllPairs(capped(ctx), qdfa, db)
	if err != nil {
		return skippedOr(err)
	}
	mapBFS := db.Eval(qnfa)
	if !eval.SamePairs(frontier, reference) {
		return fmt.Errorf("oracle: frontier evaluator disagrees with closure reference on the query\nfrontier:  %v\nreference: %v\ninstance %s\n%s",
			db.PairNames(frontier), db.PairNames(reference), inst, db.DOT("db"))
	}
	if !eval.SamePairs(frontier, mapBFS) {
		return fmt.Errorf("oracle: frontier evaluator disagrees with map BFS on the query\nfrontier: %v\nmap BFS:  %v\ninstance %s\n%s",
			db.PairNames(frontier), db.PairNames(mapBFS), inst, db.DOT("db"))
	}

	// Single-source spot checks: From must slice AllPairs exactly.
	if db.NumNodes() > 0 {
		r := rand.New(rand.NewSource(int64(len(frontier))*1021 + int64(db.NumEdges())))
		src := graph.NodeID(r.Intn(db.NumNodes()))
		from, err := qev.From(capped(ctx), src)
		if err != nil {
			return skippedOr(err)
		}
		want := map[graph.NodeID]bool{}
		for _, p := range frontier {
			if p.From == src {
				want[p.To] = true
			}
		}
		if len(from) != len(want) {
			return fmt.Errorf("oracle: From(%d) returned %d answers, all-pairs has %d for that source (instance %s)",
				src, len(from), len(want), inst)
		}
		for _, n := range from {
			if !want[n] {
				return fmt.Errorf("oracle: From(%d) answer %s missing from all-pairs (instance %s)",
					src, db.NodeName(n), inst)
			}
		}
	}

	// Rewriting over the view-image graph, two ways, and soundness
	// against the query answers.
	rw, err := core.MaximalRewritingContext(capped(ctx), inst)
	if err != nil {
		return skippedOr(err)
	}
	vg, err := eval.ViewGraph(capped(ctx), db, inst.SigmaE(), inst.ViewNFAs())
	if err != nil {
		return skippedOr(err)
	}
	rdfa := rw.MinimalDFA()
	rev, err := eval.New(rdfa, vg)
	if err != nil {
		return err
	}
	rwFrontier, err := rev.AllPairs(capped(ctx))
	if err != nil {
		return skippedOr(err)
	}
	rwReference, err := eval.ReferenceAllPairs(capped(ctx), rdfa, vg)
	if err != nil {
		return skippedOr(err)
	}
	if !eval.SamePairs(rwFrontier, rwReference) {
		return fmt.Errorf("oracle: frontier evaluator disagrees with closure reference on the rewriting\nfrontier:  %v\nreference: %v\ninstance %s",
			vg.PairNames(rwFrontier), vg.PairNames(rwReference), inst)
	}
	// Node ids in the view-image graph equal the base graph's, so the
	// answer sets compare directly.
	if !eval.SubsetOfPairs(rwFrontier, frontier) {
		return fmt.Errorf("oracle: rewriting answers not contained in query answers\nrewriting: %v\nquery:     %v\ninstance %s",
			vg.PairNames(rwFrontier), db.PairNames(frontier), inst)
	}
	exact, _, err := rw.IsExactContext(capped(ctx))
	if err != nil {
		return skippedOr(err)
	}
	if exact && !eval.SamePairs(rwFrontier, frontier) {
		return fmt.Errorf("oracle: exact rewriting disagrees with query over the base graph\nrewriting: %v\nquery:     %v\ninstance %s",
			vg.PairNames(rwFrontier), db.PairNames(frontier), inst)
	}
	return nil
}
