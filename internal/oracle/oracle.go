// Package oracle is the differential test oracle of the rewriting
// pipeline. It checks two properties on arbitrary instances (the test
// suite feeds it random ones from internal/workload):
//
//  1. Soundness (Theorem 2): the expansion of the maximal rewriting is
//     contained in the target language, exp(L(R)) ⊆ L(E0). This holds
//     for every instance, so any counterexample word is a pipeline bug.
//  2. Parallel ≡ sequential: the rewriting computed with the parallel
//     transfer fan-out (par.WithWorkers > 1) is the same automaton as
//     the sequential one — not merely language-equivalent but byte-
//     identical when serialized, since the merge order is deterministic.
//
// A third, metamorphic property cross-validates the observability
// layer itself: rerunning the pipeline under a deterministic tracer and
// a fresh metrics registry must not perturb the result, and every
// read-out — span state totals, per-stage counters, cache probe counts
// — must agree with the ground truth the budget meters and the
// constructed automata establish independently.
//
// Instances whose construction exceeds the state cap are skipped, not
// failed: the oracle bounds its own work so random sweeps stay fast.
// Skips are not silent, though: they feed the process-wide
// oracle.checked / oracle.skipped counters so sweeps can fail when the
// cap hollows out the distribution.
package oracle

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/obs"
	"regexrw/internal/par"
)

// oracleCounters tallies verdicts on the process-wide registry. The
// test suite reads them back to fail sweeps where the size cap skips
// too large a fraction of instances (a silently hollowed-out sweep
// proves nothing).
var oracleCounters = struct {
	checked *obs.Counter
	skipped *obs.Counter
}{
	checked: obs.Default.Counter("oracle.checked"),
	skipped: obs.Default.Counter("oracle.skipped"),
}

// Verdicts reports how many instances this process's oracle runs have
// checked to completion and how many were skipped at the size cap.
func Verdicts() (checked, skipped int64) {
	return oracleCounters.checked.Value(), oracleCounters.skipped.Value()
}

// ErrSkipped reports that an instance blew past the oracle's size cap
// before either property could be decided. Callers treat it as "no
// verdict", not as a failure.
var ErrSkipped = errors.New("oracle: instance exceeds size cap")

// Config bounds one oracle check.
type Config struct {
	// MaxStates caps the total states materialized by each pipeline run
	// (sequential, parallel, expansion, containment). Zero means the
	// DefaultConfig cap.
	MaxStates int
	// Workers is the worker count for the parallel run; zero means the
	// par default (GOMAXPROCS).
	Workers int
}

// DefaultConfig is the cap used by the test suite: large enough that
// most random instances get a verdict, small enough that a
// doubly-exponential outlier (Theorem 5 lives in this distribution!)
// cannot stall the run.
func DefaultConfig() Config { return Config{MaxStates: 50000} }

// CheckInstance runs the oracle properties on the instance. It returns
// nil when all hold, an error wrapping ErrSkipped when the size cap was
// hit, and a descriptive error when a property is violated — the latter
// is always a bug. Every call records its verdict on the process-wide
// oracle.checked / oracle.skipped counters.
func CheckInstance(ctx context.Context, inst *core.Instance, cfg Config) error {
	err := checkInstance(ctx, inst, cfg)
	switch {
	case err == nil:
		oracleCounters.checked.Inc()
	case errors.Is(err, ErrSkipped):
		oracleCounters.skipped.Inc()
	}
	return err
}

func checkInstance(ctx context.Context, inst *core.Instance, cfg Config) error {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultConfig().MaxStates
	}
	capped := func(parent context.Context) context.Context {
		return budget.With(parent, budget.New(budget.MaxStates(cfg.MaxStates)))
	}
	skippedOr := func(err error) error {
		var ex *budget.ExceededError
		if errors.As(err, &ex) {
			return fmt.Errorf("%w: %w", ErrSkipped, err)
		}
		return err
	}

	// Sequential reference run.
	seqCtx := par.WithWorkers(capped(ctx), 1)
	rSeq, err := core.MaximalRewritingContext(seqCtx, inst)
	if err != nil {
		return skippedOr(err)
	}

	// Parallel run over the same instance.
	parCtx := capped(ctx)
	if cfg.Workers > 0 {
		parCtx = par.WithWorkers(parCtx, cfg.Workers)
	}
	rPar, err := core.MaximalRewritingContext(parCtx, inst)
	if err != nil {
		return skippedOr(err)
	}

	// Property 2 first (cheap): the parallel pipeline must reproduce the
	// sequential automata bit for bit — the deterministic-merge argument
	// (docs/PERFORMANCE.md §2) promises identity, not just equivalence.
	if err := sameNFA("APrime", rSeq.APrime, rPar.APrime); err != nil {
		return err
	}
	if err := sameNFA("Auto", rSeq.Auto.NFA(), rPar.Auto.NFA()); err != nil {
		return err
	}
	if !automata.Equivalent(rSeq.APrime, rPar.APrime) {
		return fmt.Errorf("oracle: parallel APrime not language-equivalent to sequential")
	}

	// Property 1: exp(L(R)) ⊆ L(E0).
	exp, err := rSeq.ExpandContext(capped(ctx))
	if err != nil {
		return skippedOr(err)
	}
	e0 := inst.Query.ToNFA(inst.Sigma())
	ok, cex, err := automata.ContainedInContext(capped(ctx), exp, e0)
	if err != nil {
		return skippedOr(err)
	}
	if !ok {
		return fmt.Errorf("oracle: soundness violated: expansion word %v ∉ L(E0) (instance %s)",
			symbolNames(inst, cex), inst)
	}

	// Property 3: observability is metamorphic — tracing and metrics
	// must neither change the computed rewriting nor disagree with the
	// ground truth established by the budget and the automata.
	if err := checkObservability(ctx, inst, cfg, rSeq); err != nil {
		return skippedOr(err)
	}
	return nil
}

// checkObservability reruns the sequential pipeline under a
// deterministic tracer and a fresh registry and cross-validates every
// observability read-out:
//
//   - the traced run yields the byte-identical APrime (observation does
//     not perturb the computation);
//   - summing states/transitions over the exported span tree reproduces
//     the budget's totals exactly — the spans and the meters are fed by
//     the same charge sites, so any drift is a lost or doubled charge;
//   - per-stage registry counters agree with the spans of that stage;
//   - a standalone determinization satisfies the construction-level
//     invariants: span states == DFA states == interner misses, and
//     cache probes == 1 (initial subset) + one per DFA transition.
func checkObservability(ctx context.Context, inst *core.Instance, cfg Config, want *core.Rewriting) error {
	b := budget.New(budget.MaxStates(cfg.MaxStates))
	tr := obs.NewTracer(obs.Deterministic())
	reg := obs.NewRegistry()
	octx := par.WithWorkers(obs.WithMetrics(obs.WithTracer(budget.With(ctx, b), tr), reg), 1)

	rObs, err := core.MaximalRewritingContext(octx, inst)
	if err != nil {
		return err
	}
	if err := sameNFA("APrime (traced rerun)", want.APrime, rObs.APrime); err != nil {
		return err
	}

	root := tr.Export()
	if root == nil {
		return fmt.Errorf("oracle: traced run exported no span tree")
	}
	var spanStates, spanTrans int64
	perStage := map[string]int64{} // span name (StartSpan2 detail stripped) → states
	obs.WalkTrace(root, func(s *obs.SpanJSON) {
		spanStates += s.States
		spanTrans += s.Transitions
		stage, _, _ := strings.Cut(s.Name, ":")
		perStage[stage] += s.States
	})
	if spanStates != b.States() || spanTrans != b.Transitions() {
		return fmt.Errorf("oracle: span tree totals (%d states, %d transitions) != budget totals (%d, %d)",
			spanStates, spanTrans, b.States(), b.Transitions())
	}

	snap := reg.Snapshot()
	var ctrStates, ctrTrans int64
	for name, v := range snap {
		switch {
		case strings.HasSuffix(name, ".states"):
			ctrStates += v
			stage := strings.TrimSuffix(name, ".states")
			if got := perStage[stage]; got != v {
				return fmt.Errorf("oracle: counter %s = %d but spans of stage %q total %d states",
					name, v, stage, got)
			}
		case strings.HasSuffix(name, ".transitions"):
			ctrTrans += v
		}
	}
	if ctrStates != b.States() || ctrTrans != b.Transitions() {
		return fmt.Errorf("oracle: registry totals (%d states, %d transitions) != budget totals (%d, %d)",
			ctrStates, ctrTrans, b.States(), b.Transitions())
	}

	return checkDeterminizeInvariants(ctx, inst, cfg)
}

// checkDeterminizeInvariants determinizes the query NFA in isolation
// and pins the exact per-construction accounting: the subset interner
// misses once per discovered subset (== DFA state) and probes once for
// the initial subset plus once per DFA transition.
func checkDeterminizeInvariants(ctx context.Context, inst *core.Instance, cfg Config) error {
	tr := obs.NewTracer(obs.Deterministic())
	reg := obs.NewRegistry()
	dctx := obs.WithMetrics(obs.WithTracer(
		budget.With(ctx, budget.New(budget.MaxStates(cfg.MaxStates))), tr), reg)

	d, err := automata.DeterminizeContext(dctx, inst.Query.ToNFA(inst.Sigma()))
	if err != nil {
		return err
	}
	spans := obs.FindSpans(tr.Export(), "automata.determinize")
	if len(spans) != 1 {
		return fmt.Errorf("oracle: standalone determinize produced %d determinize spans, want 1", len(spans))
	}
	sp := spans[0]
	states, trans := int64(d.NumStates()), int64(d.NumTransitions())
	if sp.States != states {
		return fmt.Errorf("oracle: determinize span states %d != DFA states %d", sp.States, states)
	}
	if sp.CacheMisses != states {
		return fmt.Errorf("oracle: determinize cache misses %d != DFA states %d (one interned subset per state)",
			sp.CacheMisses, states)
	}
	if probes := sp.CacheHits + sp.CacheMisses; probes != 1+trans {
		return fmt.Errorf("oracle: determinize cache probes %d != 1 + %d transitions", probes, trans)
	}
	if got := reg.Snapshot()["automata.determinize.states"]; got != states {
		return fmt.Errorf("oracle: counter automata.determinize.states = %d, want %d", got, states)
	}
	return nil
}

// sameNFA compares the canonical serializations of two NFAs and reports
// a diff-style error on mismatch.
func sameNFA(what string, a, b *automata.NFA) error {
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		return fmt.Errorf("oracle: serialize sequential %s: %w", what, err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		return fmt.Errorf("oracle: serialize parallel %s: %w", what, err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		return fmt.Errorf("oracle: parallel %s differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			what, ba.String(), bb.String())
	}
	return nil
}

func symbolNames(inst *core.Instance, word []alphabet.Symbol) []string {
	out := make([]string, len(word))
	for i, x := range word {
		out[i] = inst.Sigma().Name(x)
	}
	return out
}
