// Package oracle is the differential test oracle of the rewriting
// pipeline. It checks two properties on arbitrary instances (the test
// suite feeds it random ones from internal/workload):
//
//  1. Soundness (Theorem 2): the expansion of the maximal rewriting is
//     contained in the target language, exp(L(R)) ⊆ L(E0). This holds
//     for every instance, so any counterexample word is a pipeline bug.
//  2. Parallel ≡ sequential: the rewriting computed with the parallel
//     transfer fan-out (par.WithWorkers > 1) is the same automaton as
//     the sequential one — not merely language-equivalent but byte-
//     identical when serialized, since the merge order is deterministic.
//
// Instances whose construction exceeds the state cap are skipped, not
// failed: the oracle bounds its own work so random sweeps stay fast.
package oracle

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/par"
)

// ErrSkipped reports that an instance blew past the oracle's size cap
// before either property could be decided. Callers treat it as "no
// verdict", not as a failure.
var ErrSkipped = errors.New("oracle: instance exceeds size cap")

// Config bounds one oracle check.
type Config struct {
	// MaxStates caps the total states materialized by each pipeline run
	// (sequential, parallel, expansion, containment). Zero means the
	// DefaultConfig cap.
	MaxStates int
	// Workers is the worker count for the parallel run; zero means the
	// par default (GOMAXPROCS).
	Workers int
}

// DefaultConfig is the cap used by the test suite: large enough that
// most random instances get a verdict, small enough that a
// doubly-exponential outlier (Theorem 5 lives in this distribution!)
// cannot stall the run.
func DefaultConfig() Config { return Config{MaxStates: 50000} }

// CheckInstance runs both oracle properties on the instance. It returns
// nil when both hold, an error wrapping ErrSkipped when the size cap was
// hit, and a descriptive error when a property is violated — the latter
// is always a bug.
func CheckInstance(ctx context.Context, inst *core.Instance, cfg Config) error {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultConfig().MaxStates
	}
	capped := func(parent context.Context) context.Context {
		return budget.With(parent, budget.New(budget.MaxStates(cfg.MaxStates)))
	}
	skippedOr := func(err error) error {
		var ex *budget.ExceededError
		if errors.As(err, &ex) {
			return fmt.Errorf("%w: %w", ErrSkipped, err)
		}
		return err
	}

	// Sequential reference run.
	seqCtx := par.WithWorkers(capped(ctx), 1)
	rSeq, err := core.MaximalRewritingContext(seqCtx, inst)
	if err != nil {
		return skippedOr(err)
	}

	// Parallel run over the same instance.
	parCtx := capped(ctx)
	if cfg.Workers > 0 {
		parCtx = par.WithWorkers(parCtx, cfg.Workers)
	}
	rPar, err := core.MaximalRewritingContext(parCtx, inst)
	if err != nil {
		return skippedOr(err)
	}

	// Property 2 first (cheap): the parallel pipeline must reproduce the
	// sequential automata bit for bit — the deterministic-merge argument
	// (docs/PERFORMANCE.md §2) promises identity, not just equivalence.
	if err := sameNFA("APrime", rSeq.APrime, rPar.APrime); err != nil {
		return err
	}
	if err := sameNFA("Auto", rSeq.Auto.NFA(), rPar.Auto.NFA()); err != nil {
		return err
	}
	if !automata.Equivalent(rSeq.APrime, rPar.APrime) {
		return fmt.Errorf("oracle: parallel APrime not language-equivalent to sequential")
	}

	// Property 1: exp(L(R)) ⊆ L(E0).
	exp, err := rSeq.ExpandContext(capped(ctx))
	if err != nil {
		return skippedOr(err)
	}
	e0 := inst.Query.ToNFA(inst.Sigma())
	ok, cex, err := automata.ContainedInContext(capped(ctx), exp, e0)
	if err != nil {
		return skippedOr(err)
	}
	if !ok {
		return fmt.Errorf("oracle: soundness violated: expansion word %v ∉ L(E0) (instance %s)",
			symbolNames(inst, cex), inst)
	}
	return nil
}

// sameNFA compares the canonical serializations of two NFAs and reports
// a diff-style error on mismatch.
func sameNFA(what string, a, b *automata.NFA) error {
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		return fmt.Errorf("oracle: serialize sequential %s: %w", what, err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		return fmt.Errorf("oracle: serialize parallel %s: %w", what, err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		return fmt.Errorf("oracle: parallel %s differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			what, ba.String(), bb.String())
	}
	return nil
}

func symbolNames(inst *core.Instance, word []alphabet.Symbol) []string {
	out := make([]string, len(word))
	for i, x := range word {
		out[i] = inst.Sigma().Name(x)
	}
	return out
}
