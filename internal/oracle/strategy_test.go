package oracle

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"regexrw/internal/core"
	"regexrw/internal/workload"
)

// TestStrategyPairs sweeps CheckStrategies over seeded random
// instances: forced-sparse ≡ forced-dense kernels (byte-identical DFAs,
// exact state numbering), adaptive ≡ forced-sequential ≡ forced-parallel
// rewritings, and materialized ≡ on-the-fly exactness verdicts must all
// hold on every instance that fits the size cap. 200 instances in full
// mode (the acceptance bar), 40 under -short.
func TestStrategyPairs(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	r := rand.New(rand.NewSource(20260808))
	cfg := workload.InstanceConfig{AlphabetSize: 3, NumViews: 3, QueryDepth: 3, ViewDepth: 3}
	ocfg := DefaultConfig()
	ocfg.Workers = 4
	checked, skipped := 0, 0
	for i := 0; i < n; i++ {
		inst := workload.RandomInstance(r, cfg)
		err := CheckStrategies(context.Background(), inst, ocfg)
		switch {
		case err == nil:
			checked++
		case errors.Is(err, ErrSkipped):
			skipped++
		default:
			t.Fatalf("instance %d: %v\ninstance: %s", i, err, inst)
		}
	}
	t.Logf("strategy oracle: %d checked, %d skipped (size cap)", checked, skipped)
	if skipped*5 > n {
		t.Fatalf("%d/%d instances skipped at the size cap (>20%%); retune the cap or the instance distribution", skipped, n)
	}
}

// TestStrategyPairsKnownInstance pins the strategy oracle on a small
// exact instance, which always gets a verdict.
func TestStrategyPairsKnownInstance(t *testing.T) {
	inst, err := core.ParseInstance("(a.b)*", map[string]string{
		"v1": "a.b",
		"v2": "(a.b)*",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStrategies(context.Background(), inst, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}
