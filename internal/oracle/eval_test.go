package oracle

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"regexrw/internal/workload"
)

// TestEvaluationDifferential sweeps the evaluation oracle over seeded
// random (graph, query, views) instances: the frontier evaluator, the
// transitive-closure reference and the map-based BFS must agree on
// every instance that fits the size cap, and the rewriting evaluated
// over the view-image graph must be sound against the query. 200
// instances in full mode (the acceptance bar), 40 under -short.
func TestEvaluationDifferential(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	r := rand.New(rand.NewSource(20260808))
	icfg := workload.InstanceConfig{AlphabetSize: 3, NumViews: 3, QueryDepth: 3, ViewDepth: 2}
	checkedBefore, skippedBefore := Verdicts()
	checked, skipped := 0, 0
	for i := 0; i < n; i++ {
		inst := workload.RandomInstance(r, icfg)
		db := workload.RandomGraph(r, workload.GraphConfig{
			Nodes:  2 + r.Intn(10),
			Edges:  r.Intn(35),
			Labels: inst.Sigma().Names(),
		})
		err := CheckEvaluation(context.Background(), inst, db, DefaultConfig())
		switch {
		case err == nil:
			checked++
		case errors.Is(err, ErrSkipped):
			skipped++
		default:
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	t.Logf("evaluation oracle: %d checked, %d skipped (size cap)", checked, skipped)

	checkedAfter, skippedAfter := Verdicts()
	if got := checkedAfter - checkedBefore; got != int64(checked) {
		t.Errorf("oracle.checked counter advanced by %d, want %d", got, checked)
	}
	if got := skippedAfter - skippedBefore; got != int64(skipped) {
		t.Errorf("oracle.skipped counter advanced by %d, want %d", got, skipped)
	}

	// A sweep where the cap skips too many instances proves nothing.
	if skipped*5 > n {
		t.Fatalf("%d/%d instances skipped at the size cap (>20%%); retune the cap or the instance distribution", skipped, n)
	}
}

// TestEvaluationSkipOnTinyCap pins the cap-skip path: an absurdly small
// state budget must surface as ErrSkipped, counted, never as a failure.
func TestEvaluationSkipOnTinyCap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	inst := workload.RandomInstance(r, workload.InstanceConfig{
		AlphabetSize: 3, NumViews: 3, QueryDepth: 3, ViewDepth: 3,
	})
	db := workload.RandomGraph(r, workload.GraphConfig{
		Nodes: 12, Edges: 40, Labels: inst.Sigma().Names(),
	})
	_, skippedBefore := Verdicts()
	err := CheckEvaluation(context.Background(), inst, db, Config{MaxStates: 2})
	if !errors.Is(err, ErrSkipped) {
		t.Fatalf("want ErrSkipped under MaxStates=2, got %v", err)
	}
	if _, skippedAfter := Verdicts(); skippedAfter != skippedBefore+1 {
		t.Fatalf("oracle.skipped = %d, want %d: skips must be counted, not silent", skippedAfter, skippedBefore+1)
	}
}

// TestEvaluationEmptyGraph checks the degenerate database: every
// algorithm must agree on the empty answer set.
func TestEvaluationEmptyGraph(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	inst := workload.RandomInstance(r, workload.InstanceConfig{
		AlphabetSize: 2, NumViews: 2, QueryDepth: 2, ViewDepth: 2,
	})
	db := workload.RandomGraph(r, workload.GraphConfig{
		Nodes: 1, Edges: 0, Labels: inst.Sigma().Names(),
	})
	if err := CheckEvaluation(context.Background(), inst, db, DefaultConfig()); err != nil {
		t.Fatalf("single-node graph: %v", err)
	}
}
