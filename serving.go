package regexrw

import (
	"time"

	"regexrw/internal/automata"
	"regexrw/internal/engine"
	"regexrw/internal/planstore"
)

// ---- The Engine / Plan serving surface ----
//
// An Engine is the recommended entry point for production use: it
// compiles a rewriting problem once into an immutable Plan — the
// maximal rewriting plus everything a caller answers from (simplified
// expression, exactness report, minimal DFA, shortest witness) — and
// caches plans in a sharded LRU keyed by a canonical hash of the
// instance, so that syntactic variation (operator spelling, whitespace,
// redundant parentheses, view declaration order) never recompiles the
// doubly exponential construction. Concurrent identical requests
// deduplicate into a single compile; admission control fails fast when
// the process is saturated.
//
//	eng := regexrw.NewEngine(
//		regexrw.WithBudgetDefaults(200_000, 0),
//		regexrw.WithDefaultTimeout(5*time.Second),
//		regexrw.WithPlanCache(1024),
//	)
//	plan, err := eng.Rewrite(ctx, regexrw.Request{
//		Query: "a·(b·a+c)*",
//		Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
//	})
//	// plan.Regex()   →  e2*·e1·e3*
//	// plan.IsExact() →  true
//
// Batch and asynchronous entry points (Engine.RewriteBatch,
// Engine.Submit) fan out over the engine's worker pool; cmd/serve
// exposes the same surface over HTTP/JSON (docs/SERVING.md).
//
// # Error taxonomy
//
// Every governed entry point — the Engine methods, the ...Context free
// functions, and cmd/serve — fails with one of a small set of typed
// errors, all composable with errors.Is / errors.As:
//
//   - *BudgetExceeded (errors.As): a resource cap tripped; the error
//     names the pipeline Stage, the Resource (states or transitions),
//     the Limit and the Used count. The rewriting as posed cannot be
//     built under the caps — raise them or simplify the instance.
//   - ErrStateLimit (errors.Is): the legacy bounded entry points
//     (MaximalRewritingBounded) report cap trips as this sentinel,
//     wrapping the *BudgetExceeded, so both checks succeed on them.
//   - *AdmissionError (errors.As), which also matches
//     errors.Is(err, ErrQueueFull): the engine declined to start a
//     compile because its admission limit and wait queue are full.
//     Purely a load signal — retry later; nothing is wrong with the
//     request.
//   - ErrClosed (errors.Is): the engine was shut down.
//   - context.DeadlineExceeded / context.Canceled (errors.Is): the
//     request's or engine's deadline fired; on the anytime entry points
//     these arrive wrapped in a result instead (AnytimePartialResult).
//
// Parse errors (bad concrete syntax) carry no sentinel: they are
// reported eagerly by the parsing constructors before any compile
// starts.

// Engine compiles rewriting problems into cached immutable Plans; see
// the package-level serving overview. Construct with NewEngine.
type Engine = engine.Engine

// Plan is the immutable compiled artifact of one rewriting problem,
// safe for unlimited concurrent use.
type Plan = engine.Plan

// EngineOption configures NewEngine.
type EngineOption = engine.Option

// Request is one regular-expression rewriting problem with per-request
// governance (Engine.Rewrite).
type Request = engine.Request

// RPQRequest is one regular-path-query rewriting problem
// (Engine.RewriteRPQ): the options struct replacing RewriteRPQ's
// positional (q0, views, t, method) signature.
type RPQRequest = engine.RPQRequest

// EngineStats is a snapshot of an engine's request, compile and cache
// counters.
type EngineStats = engine.Stats

// EngineBatchResult is one item's outcome in Engine.RewriteBatch.
type EngineBatchResult = engine.BatchResult

// EngineHandle is the future returned by Engine.Submit.
type EngineHandle = engine.Handle

// QueryRequest is one RPQ answering request (Engine.Query): a
// rewriting problem plus the labeled graph to answer it over.
type QueryRequest = engine.QueryRequest

// QueryResult is the outcome of Engine.Query.
type QueryResult = engine.QueryResult

// QueryAnswer is one answer pair, by node name.
type QueryAnswer = engine.QueryAnswer

// QueryMode selects the evaluated automaton: ModeRewriting (the
// maximal rewriting over a view-image graph) or ModeQuery (the
// original query over the base database).
type QueryMode = engine.QueryMode

// LiveQuery is a retained incremental evaluation session
// (Engine.QueryIncremental): its answer set stays current under edge
// insertions without re-evaluating from scratch.
type LiveQuery = engine.LiveQuery

// Query evaluation modes.
const (
	ModeRewriting = engine.ModeRewriting
	ModeQuery     = engine.ModeQuery
)

// AdmissionError reports an engine rejection under load; it matches
// errors.Is(err, ErrQueueFull).
type AdmissionError = engine.AdmissionError

// Typed sentinels of the serving layer; see the error taxonomy above.
var (
	// ErrQueueFull matches admission rejections.
	ErrQueueFull = engine.ErrQueueFull
	// ErrClosed matches requests against a closed engine.
	ErrClosed = engine.ErrClosed
	// ErrStateLimit matches state-cap trips reported by the legacy
	// bounded entry points.
	ErrStateLimit = automata.ErrStateLimit
)

// NewEngine returns an Engine with the given options; see the serving
// overview above for the recommended governance settings.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithBudgetDefaults caps every compile's materialized automaton states
// and transitions (0 = unlimited). Requests may tighten the caps via
// Request.MaxStates / MaxTransitions but never widen them.
func WithBudgetDefaults(maxStates, maxTransitions int) EngineOption {
	return engine.WithBudgetDefaults(maxStates, maxTransitions)
}

// WithDefaultTimeout sets the wall-clock deadline applied to every
// compile whose context has none (0 = no deadline).
func WithDefaultTimeout(d time.Duration) EngineOption { return engine.WithDefaultTimeout(d) }

// WithWorkers sets the engine's worker count for batch fan-out and the
// parallel stages inside each compile (0 = GOMAXPROCS).
func WithWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// WithPlanCache sets the plan cache capacity in plans (0 disables
// caching; the default is 1024).
func WithPlanCache(capacity int) EngineOption { return engine.WithPlanCache(capacity) }

// WithAdmissionLimit bounds concurrent compiles, with up to queue
// further requests waiting for a slot; beyond that requests fail fast
// with an *AdmissionError (0 disables admission control).
func WithAdmissionLimit(inflight, queue int) EngineOption {
	return engine.WithAdmissionLimit(inflight, queue)
}

// ---- Persistent plan store ----
//
// A PlanStore is the crash-safe disk tier behind the in-memory plan
// cache: compiled plans are written behind to a content-addressed
// directory and restored on the next boot (Engine.WarmStart, or lazily
// on the first miss per key), so a restarted process serves its
// pre-crash working set without re-running the doubly exponential
// construction. Entries are checksummed; a corrupt entry is quarantined
// and recompiled, never served. Store failures degrade requests to
// in-memory compiles — a sick disk can never fail a rewrite.
//
//	store, err := regexrw.OpenPlanStore("/var/lib/regexrw/plans",
//		regexrw.WithPlanStoreMetrics(regexrw.GlobalMetrics()))
//	eng := regexrw.NewEngine(regexrw.WithPlanStore(store))
//	n, _ := eng.WarmStart(ctx) // n plans hot before the first request

// PlanStore is the persistent, content-addressed plan store; see
// docs/SERVING.md for the on-disk layout and durability contract.
type PlanStore = planstore.Store

// PlanStoreOption configures OpenPlanStore.
type PlanStoreOption = planstore.Option

// PlanStoreStats is a snapshot of a store's hit/miss/corruption and
// circuit-breaker counters; also embedded in EngineStats.Store.
type PlanStoreStats = planstore.Stats

// ErrPlanCorrupt matches reads of a corrupt store entry (already
// quarantined by the time the error is returned).
var ErrPlanCorrupt = planstore.ErrCorrupt

// OpenPlanStore opens (creating if needed) a plan store rooted at dir.
func OpenPlanStore(dir string, opts ...PlanStoreOption) (*PlanStore, error) {
	return planstore.Open(dir, opts...)
}

// WithPlanStore attaches a persistent plan store to the engine: cache
// misses try the disk before compiling, and fresh compiles are written
// behind. Strictly best-effort; see the persistent-store overview.
func WithPlanStore(s *PlanStore) EngineOption { return engine.WithPlanStore(s) }

// WithPlanStoreMetrics routes the store's plan_store.* counters to m —
// pass the engine's registry so they land next to the engine.* ones.
func WithPlanStoreMetrics(m *Metrics) PlanStoreOption { return planstore.WithMetrics(m) }

// WithPlanStoreBreaker tunes the store's consecutive-error circuit
// breaker (default: 5 failures, 2s cooldown; threshold 0 disables).
func WithPlanStoreBreaker(threshold int, cooldown time.Duration) PlanStoreOption {
	return planstore.WithBreaker(threshold, cooldown)
}

// WithEngineTracer installs a tracer for compiles whose context carries
// none. (Named to avoid colliding with the per-context WithTracer.)
func WithEngineTracer(t *Tracer) EngineOption { return engine.WithTracer(t) }

// WithEngineMetrics sets the registry receiving the engine's counters
// ("engine.requests", "cache.plan.hits", …) and the per-stage pipeline
// counters of compiles that carry no registry of their own; the default
// is GlobalMetrics(). (Named to avoid colliding with the per-context
// WithMetrics.)
func WithEngineMetrics(m *Metrics) EngineOption { return engine.WithMetrics(m) }
