package regexrw_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"regexrw"
	"regexrw/internal/budget"
	"regexrw/internal/workload"
)

func TestEngineFacade(t *testing.T) {
	eng := regexrw.NewEngine(
		regexrw.WithBudgetDefaults(1_000_000, 0),
		regexrw.WithDefaultTimeout(time.Minute),
		regexrw.WithWorkers(2),
		regexrw.WithPlanCache(8),
		regexrw.WithEngineMetrics(regexrw.NewMetrics()),
	)
	defer eng.Close()
	plan, err := eng.Rewrite(context.Background(), regexrw.Request{
		Query: "a·(b·a+c)*",
		Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Regex().String(); got != "e2*·e1·e3*" {
		t.Fatalf("rewriting = %s", got)
	}
	if !plan.IsExact() || plan.Exactness().Verdict != regexrw.ExactYes {
		t.Fatal("Example 2 is exact")
	}
	// The engine result and the legacy free function agree.
	legacy, err := regexrw.Rewrite("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !regexrw.EquivalentExprs(plan.Regex(), legacy.Regex()) {
		t.Fatalf("engine %s and legacy %s disagree", plan.Regex(), legacy.Regex())
	}
	if s := eng.Stats(); s.Compiles != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEngineFacadeQuery(t *testing.T) {
	eng := regexrw.NewEngine(regexrw.WithEngineMetrics(regexrw.NewMetrics()))
	defer eng.Close()
	// View-image chain x --e2--> y --e1--> z --e3--> w for Example 2's
	// rewriting e2*·e1·e3*.
	db := regexrw.NewDB(nil)
	db.AddEdge("x", "e2", "y")
	db.AddEdge("y", "e1", "z")
	db.AddEdge("z", "e3", "w")
	res, err := eng.Query(context.Background(), regexrw.QueryRequest{
		Request: regexrw.Request{
			Query: "a·(b·a+c)*",
			Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
		},
		Graph:  db,
		Mode:   regexrw.ModeRewriting,
		Source: "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 || res.Answers[0] != (regexrw.QueryAnswer{From: "x", To: "w"}) {
		t.Fatalf("facade query answers = %v", res.Answers)
	}

	lq, err := eng.QueryIncremental(context.Background(), regexrw.QueryRequest{
		Request: regexrw.Request{
			Query: "a·(b·a+c)*",
			Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
		},
		Graph:  db,
		Source: "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	lq.InsertEdge("w", "e3", "v")
	fresh, err := lq.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0] != (regexrw.QueryAnswer{From: "x", To: "v"}) {
		t.Fatalf("incremental facade answers = %v", fresh)
	}
}

func TestEngineFacadeRPQ(t *testing.T) {
	tt := regexrw.NewTheory()
	tt.AddConstants("a", "b", "c")
	q0, err := regexrw.ParseQuery("fa·(fb+fc)", map[string]string{
		"fa": "=a", "fb": "=b", "fc": "=c",
	})
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := regexrw.ParseFormula("=a")
	fb, _ := regexrw.ParseFormula("=b")
	fc, _ := regexrw.ParseFormula("=c")
	views := []regexrw.RPQView{
		{Name: "q1", Query: regexrw.AtomicQuery("fa", fa)},
		{Name: "q2", Query: regexrw.AtomicQuery("fb", fb)},
		{Name: "q3", Query: regexrw.AtomicQuery("fc", fc)},
	}
	eng := regexrw.NewEngine(regexrw.WithEngineMetrics(regexrw.NewMetrics()))
	plan, err := eng.RewriteRPQ(context.Background(), regexrw.RPQRequest{
		Query: q0, Views: views, Theory: tt, Method: regexrw.Grounded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.RPQ() == nil || !plan.IsExact() {
		t.Fatalf("expected an exact RPQ plan, got %+v", plan.Exactness())
	}
	// The deprecated positional signature still works and agrees.
	legacy, err := regexrw.RewriteRPQ(q0, views, tt, regexrw.Grounded)
	if err != nil {
		t.Fatal(err)
	}
	if !regexrw.EquivalentExprs(plan.Regex(), legacy.Regex()) {
		t.Fatalf("engine %s and legacy %s disagree", plan.Regex(), legacy.Regex())
	}
}

// TestErrorTaxonomy pins the facade's documented error contract: every
// failure mode matches its sentinel through errors.Is and its typed
// error through errors.As, across the engine and the legacy entry
// points.
func TestErrorTaxonomy(t *testing.T) {
	blowup := workload.DetBlowupFamily(10)

	t.Run("budget exceeded via engine", func(t *testing.T) {
		eng := regexrw.NewEngine(
			regexrw.WithBudgetDefaults(50, 0),
			regexrw.WithEngineMetrics(regexrw.NewMetrics()),
		)
		_, err := eng.Rewrite(context.Background(), regexrw.Request{Instance: blowup})
		var ex *regexrw.BudgetExceeded
		if !errors.As(err, &ex) {
			t.Fatalf("want *BudgetExceeded, got %v", err)
		}
		if ex.Stage == "" || ex.Limit != 50 {
			t.Fatalf("diagnostics missing: %+v", ex)
		}
	})

	t.Run("state limit via legacy bounded", func(t *testing.T) {
		_, err := regexrw.MaximalRewritingBounded(blowup, 50)
		if !errors.Is(err, regexrw.ErrStateLimit) {
			t.Fatalf("want ErrStateLimit, got %v", err)
		}
		// The same failure also carries the budget diagnostics: both
		// checks succeed on one error.
		var ex *regexrw.BudgetExceeded
		if !errors.As(err, &ex) {
			t.Fatalf("bounded error should wrap *BudgetExceeded, got %v", err)
		}
	})

	t.Run("admission rejection", func(t *testing.T) {
		eng := regexrw.NewEngine(
			regexrw.WithAdmissionLimit(1, 0),
			regexrw.WithEngineMetrics(regexrw.NewMetrics()),
		)
		release := make(chan struct{})
		entered := make(chan struct{})
		var once sync.Once
		stall := budget.New(budget.WithHook(func(string) error {
			once.Do(func() { close(entered); <-release })
			return nil
		}))
		done := make(chan error, 1)
		go func() {
			_, err := eng.Rewrite(regexrw.WithBudget(context.Background(), stall), regexrw.Request{
				Query: "a·(b·a+c)*",
				Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
			})
			done <- err
		}()
		<-entered
		_, err := eng.Rewrite(context.Background(), regexrw.Request{
			Query: "a·a", Views: map[string]string{"e1": "a"},
		})
		if !errors.Is(err, regexrw.ErrQueueFull) {
			t.Fatalf("want ErrQueueFull, got %v", err)
		}
		var adm *regexrw.AdmissionError
		if !errors.As(err, &adm) {
			t.Fatalf("want *AdmissionError, got %v", err)
		}
		close(release)
		if err := <-done; err != nil {
			t.Fatalf("stalled compile: %v", err)
		}
	})

	t.Run("closed engine", func(t *testing.T) {
		eng := regexrw.NewEngine(regexrw.WithEngineMetrics(regexrw.NewMetrics()))
		eng.Close()
		_, err := eng.Rewrite(context.Background(), regexrw.Request{
			Query: "a", Views: map[string]string{"e1": "a"},
		})
		if !errors.Is(err, regexrw.ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		eng := regexrw.NewEngine(regexrw.WithEngineMetrics(regexrw.NewMetrics()))
		_, err := eng.Rewrite(context.Background(), regexrw.Request{
			Instance: blowup,
			Timeout:  time.Nanosecond,
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want DeadlineExceeded, got %v", err)
		}
	})
}
