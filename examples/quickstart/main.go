// Quickstart: rewrite a regular expression in terms of views and check
// exactness — the paper's Example 2 end-to-end through the public API.
package main

import (
	"fmt"
	"log"

	"regexrw"
)

func main() {
	// E0 = a·(b·a+c)* with views e1 = a, e2 = a·c*·b, e3 = c.
	r, err := regexrw.Rewrite("a·(b·a+c)*", map[string]string{
		"e1": "a",
		"e2": "a·c*·b",
		"e3": "c",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("maximal rewriting:", r.Regex()) // e2*·e1·e3*
	exact, _ := r.IsExact()
	fmt.Println("exact:", exact) // true

	// Membership of Σ_E-words in the rewriting.
	fmt.Println("e2·e1 in rewriting:", r.Accepts("e2", "e1"))               // true
	fmt.Println("e1·e2 in rewriting:", r.Accepts("e1", "e2"))               // false
	fmt.Println("e2·e2·e1·e3 accepted:", r.Accepts("e2", "e2", "e1", "e3")) // true

	// Dropping the view for c loses exactness; the library shows which
	// word of L(E0) became unreachable.
	r2, err := regexrw.Rewrite("a·(b·a+c)*", map[string]string{
		"e1": "a",
		"e2": "a·c*·b",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwithout view c:", r2.Regex()) // e2*·e1
	exact2, witness := r2.IsExact()
	fmt.Println("exact:", exact2) // false
	sigma := r2.Sigma()
	out := ""
	for i, x := range witness {
		if i > 0 {
			out += "·"
		}
		out += sigma.Name(x)
	}
	fmt.Println("missing word of L(E0):", out) // a·c
}
