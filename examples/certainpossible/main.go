// Certainpossible: the certain/possible answer gap. When views only
// partially determine the database, the maximal contained rewriting
// yields answers that hold in EVERY database consistent with the views
// (certain), while the possibility rewriting yields answers that hold
// in SOME such database (possible). This example shows both, plus the
// cost-based view pruning that keeps query plans cheap.
package main

import (
	"fmt"
	"log"

	"regexrw"
)

func main() {
	// A catalogue database: products link to either a spec sheet or a
	// review, and reviews link to scores.
	t := regexrw.NewTheory()
	t.AddConstants("spec", "review", "score")

	db := regexrw.NewDB(t)
	db.AddEdge("p1", "review", "r1")
	db.AddEdge("r1", "score", "s1")
	db.AddEdge("p2", "spec", "d2")

	// The query: products connected to a score through a review.
	q0, err := regexrw.ParseQuery("rev·sc", map[string]string{
		"rev": "=review", "sc": "=score",
	})
	if err != nil {
		log.Fatal(err)
	}

	// The only view exported by the source conflates spec and review
	// edges ("some document link"), plus a score view.
	mk := func(expr string, formulas map[string]string) *regexrw.Query {
		q, err := regexrw.ParseQuery(expr, formulas)
		if err != nil {
			log.Fatal(err)
		}
		return q
	}
	views := []regexrw.RPQView{
		{Name: "doc", Query: mk("d", map[string]string{"d": "=spec | =review"})},
		{Name: "sc", Query: mk("s", map[string]string{"s": "=score"})},
	}

	certain, err := regexrw.RewriteRPQ(q0, views, t, regexrw.Grounded)
	if err != nil {
		log.Fatal(err)
	}
	possible, err := regexrw.RewritePossibleRPQ(q0, views, t)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("certain rewriting: ", certain.RegexOverViews(), "(doc·sc could be spec·score ∉ query)")
	fmt.Println("possible rewriting:", possible.Regex())

	fmt.Println("\ncertain answers (hold in every database with these views):")
	for _, p := range db.PairNames(certain.AnswerUsingViews(db)) {
		fmt.Println("  ", p)
	}
	fmt.Println("possible answers (hold in some database with these views):")
	for _, p := range db.PairNames(possible.AnswerPossibleUsingViews(db)) {
		fmt.Println("  ", p)
	}

	// Cost-based pruning at the regular-expression level: with an extra
	// precise-but-expensive view available, the planner keeps the cheap
	// combination when it answers the same language.
	inst, err := regexrw.ParseInstance("review·score", map[string]string{
		"vPath": "review·score", // precomputed join, expensive to refresh
		"vRev":  "review",
		"vSc":   "score",
	})
	if err != nil {
		log.Fatal(err)
	}
	costs := regexrw.ViewCosts{"vPath": 40, "vRev": 2, "vSc": 2}
	pruned, r, err := regexrw.PruneViews(inst, costs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nview pruning under costs {vPath: 40, vRev: 2, vSc: 2}:")
	fmt.Print("  kept:")
	for _, v := range pruned.Views {
		fmt.Print(" ", v.Name)
	}
	fmt.Printf("\n  plan: %s  (estimated cost %.0f)\n", r.Regex(), r.EstimatedCost(costs))
}
