// Integration: a data-integration scenario. Two autonomous sources
// each export a view over a global flight network; a mediator query
// asking for connections must be answered using only the sources. The
// maximal rewriting is not exact, and the partial-rewriting search of
// Section 4.3 reports the cheapest additional source that would make
// it exact.
package main

import (
	"fmt"
	"log"

	"regexrw"
)

func main() {
	t := regexrw.NewTheory()
	t.AddConstants("train", "flight", "ferry")
	t.Declare("ground", "train", "ferry")

	// Global database: a small European transport network. Only the
	// mediator knows it; the sources see fragments through their views.
	db := regexrw.NewDB(t)
	db.AddEdge("london", "train", "paris")
	db.AddEdge("paris", "flight", "rome")
	db.AddEdge("rome", "ferry", "athens")
	db.AddEdge("paris", "train", "milan")
	db.AddEdge("milan", "flight", "athens")
	db.AddEdge("london", "flight", "rome")

	parse := func(expr string, formulas map[string]string) *regexrw.Query {
		q, err := regexrw.ParseQuery(expr, formulas)
		if err != nil {
			log.Fatal(err)
		}
		return q
	}

	// Mediator query: reachability by any number of train legs followed
	// by exactly one flight.
	q0 := parse("tr*·fl", map[string]string{"tr": "=train", "fl": "=flight"})

	// Source A exports train legs; source B exports train*-then-flight
	// itineraries it sells as packages.
	views := []regexrw.RPQView{
		{Name: "srcTrain", Query: parse("tr", map[string]string{"tr": "=train"})},
		{Name: "srcPackage", Query: parse("tr·tr*·fl", map[string]string{"tr": "=train", "fl": "=flight"})},
	}

	r, err := regexrw.RewriteRPQ(q0, views, t, regexrw.Direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mediator rewriting:", r.RegexOverViews())
	exact, _ := r.IsExact()
	fmt.Println("exact:", exact) // false: a lone flight (no train prefix) is not covered

	fmt.Println("\nanswers obtainable from the sources:")
	for _, p := range db.PairNames(r.AnswerUsingViews(db)) {
		fmt.Println("  ", p)
	}
	fmt.Println("\nanswers of the mediator query over the global database:")
	for _, p := range db.PairNames(q0.Answer(t, db)) {
		fmt.Println("  ", p)
	}

	// What source would close the gap? The Section 4.3 search proposes
	// the cheapest atomic/elementary additions.
	res, err := regexrw.PartialRewriteRPQ(q0, views, t, regexrw.Direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nto answer the query exactly, additionally materialize:")
	for _, c := range res.Added {
		fmt.Printf("   %v view for %q\n", c.Kind, c.Name)
	}
	fmt.Println("extended rewriting:", res.Rewriting.RegexOverViews())
}
