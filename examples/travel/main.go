// Travel: the introduction's motivating scenario. A semi-structured web
// of cities and venues is queried with the regular path query
// "(rome + jerusalem) followed by any edges and then a restaurant
// edge"; the query is then rewritten in terms of available views and
// answered through them (Section 4 of the paper).
package main

import (
	"fmt"
	"log"

	"regexrw"
)

func main() {
	// Theory: the finite domain of edge labels and its predicates.
	t := regexrw.NewTheory()
	t.AddConstants("rome", "jerusalem", "paris", "district", "restaurant", "hotel")
	t.Declare("city", "rome", "jerusalem", "paris")
	t.Declare("venue", "restaurant", "hotel")

	// The site graph.
	db := regexrw.NewDB(t)
	db.AddEdge("root", "rome", "romePage")
	db.AddEdge("root", "jerusalem", "jerusalemPage")
	db.AddEdge("root", "paris", "parisPage")
	db.AddEdge("romePage", "district", "trastevere")
	db.AddEdge("trastevere", "restaurant", "carlotta")
	db.AddEdge("jerusalemPage", "restaurant", "taami")
	db.AddEdge("parisPage", "hotel", "ritz")

	// The query ·*(rome+jerusalem)·*restaurant from the introduction,
	// here anchored at the site root: the pages of Rome or Jerusalem,
	// any chain of district edges, then a restaurant edge.
	q0, err := regexrw.ParseQuery("cityRJ·dist*·rest", map[string]string{
		"cityRJ": "=rome | =jerusalem",
		"dist":   "=district",
		"rest":   "=restaurant",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("direct evaluation:")
	for _, p := range db.PairNames(q0.Answer(t, db)) {
		fmt.Println("  ", p)
	}

	// Views the site happens to export.
	mk := func(expr string, formulas map[string]string) *regexrw.Query {
		q, err := regexrw.ParseQuery(expr, formulas)
		if err != nil {
			log.Fatal(err)
		}
		return q
	}
	views := []regexrw.RPQView{
		{Name: "vCity", Query: mk("cityRJ", map[string]string{"cityRJ": "=rome | =jerusalem"})},
		{Name: "vDist", Query: mk("dist", map[string]string{"dist": "=district"})},
		{Name: "vRest", Query: mk("rest", map[string]string{"rest": "=restaurant"})},
	}

	r, err := regexrw.RewriteRPQ(q0, views, t, regexrw.Grounded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrewriting over the views:", r.RegexOverViews())
	exact, _ := r.IsExact()
	fmt.Println("exact:", exact)

	fmt.Println("\nanswer computed from the views alone:")
	for _, p := range db.PairNames(r.AnswerUsingViews(db)) {
		fmt.Println("  ", p)
	}
}
