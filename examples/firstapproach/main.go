// Firstapproach: the paper's Section 4 distinguishes two semi-structured
// data models. This example uses the FIRST one — edges labeled directly
// by constants, queries as plain regular expressions over those labels,
// no formula/theory layer — where "the rewriting techniques proposed in
// Section 2 can be directly applied". Compare examples/travel, which
// uses the second (formula-based) model on the same scenario.
package main

import (
	"fmt"
	"log"

	"regexrw/internal/graph"
	"regexrw/internal/regex"
	"regexrw/internal/rpq"
)

func main() {
	db := graph.New(nil)
	db.AddEdge("root", "rome", "romePage")
	db.AddEdge("root", "jerusalem", "jerusalemPage")
	db.AddEdge("root", "paris", "parisPage")
	db.AddEdge("romePage", "restaurant", "carlotta")
	db.AddEdge("jerusalemPage", "restaurant", "taami")
	db.AddEdge("parisPage", "hotel", "ritz")

	// The introduction's query, with labels used directly as letters.
	q, err := rpq.ParseConstQuery("(rome+jerusalem)·restaurant")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("direct evaluation:")
	for _, p := range db.PairNames(q.Answer(db)) {
		fmt.Println("  ", p)
	}

	views := []rpq.ConstView{
		{Name: "vCity", Expr: regex.MustParse("rome+jerusalem")},
		{Name: "vRest", Expr: regex.MustParse("restaurant")},
	}
	r, err := rpq.RewriteConst(q, views)
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := r.IsExact()
	fmt.Println("\nrewriting:", r.Regex(), " exact:", exact)

	fmt.Println("answer computed from the views alone:")
	for _, p := range db.PairNames(r.AnswerUsingViews(db)) {
		fmt.Println("  ", p)
	}
}
