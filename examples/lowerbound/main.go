// Lowerbound: a demonstration of Theorem 8. The counter family has
// polynomial-size inputs but its maximal rewriting must describe the
// single word spelling an n-bit counter (length n·2^n), so the minimal
// rewriting automaton blows up exponentially. The program prints the
// growth table and verifies that the counter word — and only the
// counter word, among structurally good ones — survives in the
// rewriting.
package main

import (
	"fmt"
	"time"

	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/workload"
)

func main() {
	fmt.Println("Theorem 8: polynomial input, exponential rewriting")
	fmt.Println()
	fmt.Printf("%2s  %12s  %14s  %8s  %s\n", "n", "input nodes", "R_min states", "n·2^n", "time")
	for n := 1; n <= 4; n++ {
		start := time.Now()
		inst := workload.CounterFamily(n)
		size := inst.Query.Size()
		for _, v := range inst.Views {
			size += v.Expr.Size()
		}
		r := core.MaximalRewriting(inst)
		min := r.MinimalDFA()
		fmt.Printf("%2d  %12d  %14d  %8d  %v\n",
			n, size, min.NumStates(), n*(1<<uint(n)), time.Since(start).Round(time.Millisecond))
	}

	// Show the surviving word for n = 2: it spells 00 10 01 11, the
	// two-bit counter 0,1,2,3 (LSB first).
	n := 2
	inst := workload.CounterFamily(n)
	r := core.MaximalRewriting(inst)
	good := workload.StructurallyGoodWords(n).ToNFA(r.SigmaE().Clone())
	inter := automata.Intersect(r.NFA(), good)
	w, ok := inter.ShortestWord()
	if !ok {
		fmt.Println("unexpected: no structurally good rewriting word")
		return
	}
	fmt.Printf("\nn=%d: the unique structurally good rewriting word (%d symbols):\n  ", n, len(w))
	for i, s := range w {
		if i > 0 && i%n == 0 {
			fmt.Print(" | ")
		}
		fmt.Print(map[string]string{"v0": "0", "v1": "1"}[inter.Alphabet().Name(s)])
	}
	fmt.Println("\n  (numbers 0,1,2,3 in binary, least significant bit first)")
}
