package regexrwclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"regexrw/internal/cluster"
)

// Client talks to one replica or a cluster of replicas. With multiple
// servers it builds the same consistent-hash ring the replicas use, so
// a request is dialed straight at the replica owning its plan key —
// a warm cache hit with no server-side forwarding hop. Any replica can
// serve any request, so every other replica is a fallback.
//
// A Client is safe for concurrent use.
type Client struct {
	servers []string
	ring    *cluster.Ring // nil for a single server
	hc      *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the default HTTP client (10s timeout). For
// streaming /v1/query responses prefer a client without an overall
// timeout and bound the request with a context instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the given replica addresses (host:port or
// full URLs). One address means direct single-server mode; several
// mean cluster mode with ring-based routing. The address list must
// match the servers' -peers list for client-side placement to agree
// with the cluster's — when it does not, the not_owner redirect
// protocol corrects the client at the cost of one extra hop.
func New(servers []string, opts ...Option) (*Client, error) {
	if len(servers) == 0 {
		return nil, errors.New("regexrwclient: no server addresses")
	}
	c := &Client{
		servers: append([]string(nil), servers...),
		hc:      &http.Client{Timeout: 10 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	if len(c.servers) > 1 {
		r, err := cluster.NewRing(c.servers, cluster.DefaultVirtualNodes)
		if err != nil {
			return nil, fmt.Errorf("regexrwclient: %w", err)
		}
		c.ring = r
	}
	return c, nil
}

// ParseServers splits a comma-separated -server flag value into a
// server list, trimming blanks.
func ParseServers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Servers returns the configured replica addresses.
func (c *Client) Servers() []string { return append([]string(nil), c.servers...) }

// APIError is a non-2xx response (or mid-stream error line) decoded
// from the standard envelope.
type APIError struct {
	// Status is the HTTP status; 200 for a mid-stream /v1/query error
	// line (the stream was already committed when the error happened).
	Status int
	Detail ErrorDetail
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server error (HTTP %d): %s", e.Status, e.Detail.Error())
}

// Rewrite posts a rewrite request to the cluster and decodes the plan.
func (c *Client) Rewrite(ctx context.Context, req RewriteRequest) (*PlanResponse, error) {
	key, _ := req.PlanKey() // a key error becomes the server's 400
	var out PlanResponse
	hdr, err := c.postJSON(ctx, "/v1/rewrite", key, req, &out)
	if err != nil {
		return nil, err
	}
	if hdr.Get(cluster.DegradedHeader) != "" {
		out.Degraded = true
	}
	return &out, nil
}

// RPQ posts a regular-path-query rewrite request.
func (c *Client) RPQ(ctx context.Context, req RPQRequest) (*PlanResponse, error) {
	key, _ := req.PlanKey()
	var out PlanResponse
	hdr, err := c.postJSON(ctx, "/v1/rpq", key, req, &out)
	if err != nil {
		return nil, err
	}
	if hdr.Get(cluster.DegradedHeader) != "" {
		out.Degraded = true
	}
	return &out, nil
}

// QueryResult summarizes a streamed /v1/query response.
type QueryResult struct {
	Header    QueryHeader
	Answers   int
	Truncated bool
	// Matched is set on boolean queries (source and target given).
	Matched *bool
	// Degraded reports the answering replica computed a plan it does
	// not own because the owner was unreachable.
	Degraded bool
}

// Query streams a graph query: fn is called once per answer pair in
// stream order (a nil fn just counts). Errors before the stream
// commits surface as *APIError with the real HTTP status; mid-stream
// error lines surface as *APIError with Status 200 after fn has seen
// every answer that preceded the failure.
func (c *Client) Query(ctx context.Context, req QueryRequest, fn func(QueryAnswer) error) (*QueryResult, error) {
	key, _ := req.PlanKey()
	resp, err := c.post(ctx, "/v1/query", key, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	res := &QueryResult{Degraded: resp.Header.Get(cluster.DegradedHeader) != ""}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	sawTrailer := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return res, fmt.Errorf("regexrwclient: malformed stream line: %w", err)
		}
		switch probe.Type {
		case "header":
			if err := json.Unmarshal(line, &res.Header); err != nil {
				return res, fmt.Errorf("regexrwclient: header: %w", err)
			}
			if res.Header.Degraded {
				res.Degraded = true
			}
		case "answer":
			var a QueryAnswer
			if err := json.Unmarshal(line, &a); err != nil {
				return res, fmt.Errorf("regexrwclient: answer: %w", err)
			}
			res.Answers++
			if fn != nil {
				if err := fn(a); err != nil {
					return res, err
				}
			}
		case "trailer":
			var t QueryTrailer
			if err := json.Unmarshal(line, &t); err != nil {
				return res, fmt.Errorf("regexrwclient: trailer: %w", err)
			}
			res.Truncated = t.Truncated
			res.Matched = t.Matched
			sawTrailer = true
		case "error":
			var el QueryErrorLine
			if err := json.Unmarshal(line, &el); err != nil {
				return res, fmt.Errorf("regexrwclient: error line: %w", err)
			}
			return res, &APIError{Status: resp.StatusCode, Detail: el.Error}
		default:
			return res, fmt.Errorf("regexrwclient: unknown stream line type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("regexrwclient: stream: %w", err)
	}
	if !sawTrailer {
		return res, errors.New("regexrwclient: stream ended without trailer or error line")
	}
	return res, nil
}

// RegisterGraph registers a named graph on every replica: graphs are
// per-replica state, and any replica may end up answering a query in
// degraded mode, so registration fans out instead of routing.
func (c *Client) RegisterGraph(ctx context.Context, req RegisterGraphRequest) (*GraphInfo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("regexrwclient: encode: %w", err)
	}
	var info GraphInfo
	ok := 0
	var lastErr error
	for _, srv := range c.servers {
		resp, err := c.roundTrip(ctx, srv, "/v1/graphs", nil, body)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = decodeAPIError(resp)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("regexrwclient: decode: %w", err)
			continue
		}
		ok++
	}
	if ok == 0 {
		return nil, fmt.Errorf("regexrwclient: graph registration failed on every replica: %w", lastErr)
	}
	return &info, nil
}

// Graphs lists the graphs registered on the first reachable replica.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var lastErr error
	for _, srv := range c.servers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cluster.PeerURL(srv, "/v1/graphs"), nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = decodeAPIError(resp)
			continue
		}
		var out struct {
			Graphs []GraphInfo `json:"graphs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("regexrwclient: decode: %w", err)
		}
		return out.Graphs, nil
	}
	return nil, fmt.Errorf("regexrwclient: every replica unreachable: %w", lastErr)
}

// postJSON posts and decodes a JSON response body, returning the
// response headers for degraded-mode detection.
func (c *Client) postJSON(ctx context.Context, path, key string, body, out any) (http.Header, error) {
	resp, err := c.post(ctx, path, key, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, fmt.Errorf("regexrwclient: decode: %w", err)
	}
	return resp.Header, nil
}

// post routes a request body to the cluster. The routing ladder:
//
//  1. Dial the ring owner of key with a no-forward marker — if the
//     client's placement is stale the server answers 421 not_owner
//     naming the true owner rather than forwarding, and the client
//     re-dials that owner once.
//  2. On transport failure, fall back to the remaining replicas in
//     ring order without the marker: the fallback replica forwards to
//     the owner itself, or degrades to local compute if it must.
//
// Without a ring (single server, or no computable key) the servers
// are tried in configured order without the marker.
func (c *Client) post(ctx context.Context, path, key string, body any) (*http.Response, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("regexrwclient: encode: %w", err)
	}
	order := c.servers
	routed := false
	if c.ring != nil && key != "" {
		owner := c.ring.Owner(key)
		order = append([]string{owner}, c.ring.Others(owner)...)
		routed = true
	}
	var lastErr error
	for i, srv := range order {
		hdr := http.Header{}
		if routed && i == 0 && len(order) > 1 {
			hdr.Set(cluster.NoForwardHeader, "1")
		}
		resp, err := c.roundTrip(ctx, srv, path, hdr, payload)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			// Client-side placement disagreed with the cluster's: follow
			// the owner the server named, once, with forwarding allowed.
			apiErr := decodeAPIError(resp)
			var ae *APIError
			if errors.As(apiErr, &ae) && ae.Detail.Code == CodeNotOwner && ae.Detail.Owner != "" {
				r2, err2 := c.roundTrip(ctx, ae.Detail.Owner, path, nil, payload)
				if err2 == nil {
					return r2, nil
				}
				lastErr = err2
				continue
			}
			lastErr = apiErr
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("regexrwclient: every replica unreachable: %w", lastErr)
}

// roundTrip posts one request to one server.
func (c *Client) roundTrip(ctx context.Context, server, path string, hdr http.Header, payload []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cluster.PeerURL(server, path), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	req.Header.Set("Content-Type", "application/json")
	return c.hc.Do(req)
}

// decodeAPIError drains a non-2xx response into an *APIError and
// closes the body.
func decodeAPIError(resp *http.Response) error {
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
		return &APIError{
			Status: resp.StatusCode,
			Detail: ErrorDetail{Code: CodeInternal, Message: strings.TrimSpace(string(raw))},
		}
	}
	return &APIError{Status: resp.StatusCode, Detail: env.Error}
}
