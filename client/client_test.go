package regexrwclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"regexrw/internal/cluster"
	"regexrw/internal/engine"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

var rwReq = RewriteRequest{Query: "a·b*", Views: map[string]string{"v1": "a", "v2": "b"}}

// replica is a stub server that counts hits and records the last
// routing headers it saw.
type replica struct {
	ts        *httptest.Server
	hits      atomic.Int64
	noForward atomic.Bool
	// respond replaces the default 200 plan response when set.
	respond atomic.Pointer[func(w http.ResponseWriter, r *http.Request)]
}

func newReplica(t *testing.T) *replica {
	t.Helper()
	rep := &replica{}
	rep.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep.hits.Add(1)
		rep.noForward.Store(r.Header.Get(cluster.NoForwardHeader) != "")
		if f := rep.respond.Load(); f != nil {
			(*f)(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"key":"k","rewriting":"v1","exact":true,"verdict":"yes","empty":false,"sigma_empty":false,"states":3}`)
	}))
	t.Cleanup(rep.ts.Close)
	return rep
}

// clusterOf returns n replicas plus their address list.
func clusterOf(t *testing.T, n int) ([]*replica, []string) {
	t.Helper()
	reps := make([]*replica, n)
	addrs := make([]string, n)
	for i := range reps {
		reps[i] = newReplica(t)
		addrs[i] = reps[i].ts.URL
	}
	return reps, addrs
}

func ownerOf(t *testing.T, addrs []string, req RewriteRequest) int {
	t.Helper()
	ring, err := cluster.NewRing(addrs, cluster.DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	key, err := req.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	owner := ring.Owner(key)
	for i, a := range addrs {
		if a == owner {
			return i
		}
	}
	t.Fatalf("owner %q not in %v", owner, addrs)
	return -1
}

// TestClientRoutesToOwner pins the core client contract: the request
// lands on the ring owner directly — no other replica sees it — and
// carries the no-forward marker so a stale client gets corrected
// instead of silently double-hopping.
func TestClientRoutesToOwner(t *testing.T) {
	reps, addrs := clusterOf(t, 3)
	c, err := New(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rewrite(context.Background(), rwReq); err != nil {
		t.Fatal(err)
	}
	owner := ownerOf(t, addrs, rwReq)
	for i, rep := range reps {
		want := int64(0)
		if i == owner {
			want = 1
		}
		if got := rep.hits.Load(); got != want {
			t.Errorf("replica %d: %d hits, want %d", i, got, want)
		}
	}
	if !reps[owner].noForward.Load() {
		t.Error("owner dial must carry the no-forward marker")
	}
}

// TestClientFollowsNotOwner: when the dialed replica disclaims
// ownership (ring mismatch), the client follows the named owner once,
// with forwarding allowed on the second hop.
func TestClientFollowsNotOwner(t *testing.T) {
	reps, addrs := clusterOf(t, 3)
	owner := ownerOf(t, addrs, rwReq)
	trueOwner := (owner + 1) % 3
	deny := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorDetail{
			V: EnvelopeVersion, Code: CodeNotOwner,
			Message: "not the owner", Owner: addrs[trueOwner],
		}})
	}
	reps[owner].respond.Store(&deny)

	c, err := New(addrs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Rewrite(context.Background(), rwReq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Key != "k" {
		t.Fatalf("key = %q", resp.Key)
	}
	if got := reps[trueOwner].hits.Load(); got != 1 {
		t.Fatalf("true owner saw %d hits, want 1", got)
	}
	if reps[trueOwner].noForward.Load() {
		t.Error("redirect hop must allow forwarding")
	}
}

// TestClientFallsBack: a dead owner never fails the request — the
// client retries the surviving replicas in ring order without the
// no-forward marker (letting the fallback forward or degrade).
func TestClientFallsBack(t *testing.T) {
	reps, addrs := clusterOf(t, 3)
	owner := ownerOf(t, addrs, rwReq)
	reps[owner].ts.Close()

	c, err := New(addrs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Rewrite(context.Background(), rwReq)
	if err != nil {
		t.Fatalf("fallback must succeed: %v", err)
	}
	if resp.Key != "k" {
		t.Fatalf("key = %q", resp.Key)
	}
	served := -1
	for i, rep := range reps {
		if i != owner && rep.hits.Load() > 0 {
			served = i
		}
	}
	if served == -1 {
		t.Fatal("no surviving replica served the request")
	}
	if reps[served].noForward.Load() {
		t.Error("fallback dial must not carry the no-forward marker")
	}
}

// TestClientAllDown: every replica dead yields a transport error, not
// a hang or a panic.
func TestClientAllDown(t *testing.T) {
	reps, addrs := clusterOf(t, 2)
	reps[0].ts.Close()
	reps[1].ts.Close()
	c, err := New(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rewrite(context.Background(), rwReq); err == nil {
		t.Fatal("want error when every replica is down")
	}
}

// TestClientAPIError decodes the envelope into a typed *APIError.
func TestClientAPIError(t *testing.T) {
	rep := newReplica(t)
	deny := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorDetail{
			V: EnvelopeVersion, Code: CodeBudgetExceeded, Message: "states exhausted",
			Stage: "containment", Resource: "states", Limit: 100, Used: 100,
		}})
	}
	rep.respond.Store(&deny)
	c, err := New([]string{rep.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Rewrite(context.Background(), rwReq)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if ae.Status != http.StatusUnprocessableEntity || ae.Detail.Code != CodeBudgetExceeded {
		t.Fatalf("APIError = %+v", ae)
	}
	if ae.Detail.Stage != "containment" || ae.Detail.Limit != 100 {
		t.Fatalf("budget diagnostics lost: %+v", ae.Detail)
	}
	if ae.Detail.V != EnvelopeVersion {
		t.Fatalf("envelope version = %d", ae.Detail.V)
	}
}

// TestClientDegradedHeader: the transport-level degraded marker
// surfaces on the decoded response even when the body lacks the field
// (a forwarding replica marks the response it computed locally).
func TestClientDegradedHeader(t *testing.T) {
	rep := newReplica(t)
	deg := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(cluster.DegradedHeader, "1")
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"key":"k","rewriting":"v1","exact":true,"verdict":"yes","empty":false,"sigma_empty":false,"states":3}`)
	}
	rep.respond.Store(&deg)
	c, err := New([]string{rep.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Rewrite(context.Background(), rwReq)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("degraded header must surface on the response")
	}
}

// TestClientQueryStream decodes the NDJSON protocol: header, answers
// in order, trailer with the boolean verdict.
func TestClientQueryStream(t *testing.T) {
	rep := newReplica(t)
	stream := func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if !strings.Contains(string(body), `"graph":"g"`) {
			t.Errorf("request body %s lacks graph", body)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"type":"header","key":"k","rewriting":"v1","exact":true,"mode":"rewriting","graph":"g","nodes":2,"edges":1}
{"type":"answer","from":"n0","to":"n1"}
{"type":"answer","from":"n1","to":"n1"}
{"type":"trailer","answers":2,"matched":true}
`)
	}
	rep.respond.Store(&stream)
	c, err := New([]string{rep.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	res, err := c.Query(context.Background(), QueryRequest{
		Query: "a", Views: map[string]string{"v1": "a"}, Graph: "g",
		Source: "n0", Target: "n1",
	}, func(a QueryAnswer) error {
		got = append(got, a.From+"→"+a.To)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != 2 || len(got) != 2 || got[0] != "n0→n1" || got[1] != "n1→n1" {
		t.Fatalf("answers = %v (%d)", got, res.Answers)
	}
	if res.Header.Key != "k" || res.Header.Graph != "g" {
		t.Fatalf("header = %+v", res.Header)
	}
	if res.Matched == nil || !*res.Matched {
		t.Fatalf("matched = %v", res.Matched)
	}
}

// TestClientQueryStreamError: a mid-stream error line surfaces as a
// typed *APIError after every preceding answer was delivered; a
// truncated stream (no trailer, no error line) is an error too.
func TestClientQueryStreamError(t *testing.T) {
	rep := newReplica(t)
	stream := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"type":"header","key":"k","rewriting":"v1","exact":true,"mode":"rewriting","graph":"g","nodes":2,"edges":1}
{"type":"answer","from":"n0","to":"n1"}
{"type":"error","error":{"v":2,"code":"deadline","message":"query timed out"}}
`)
	}
	rep.respond.Store(&stream)
	c, err := New([]string{rep.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	_, err = c.Query(context.Background(), QueryRequest{
		Query: "a", Views: map[string]string{"v1": "a"}, Graph: "g",
	}, func(QueryAnswer) error { seen++; return nil })
	var ae *APIError
	if !errors.As(err, &ae) || ae.Detail.Code != CodeDeadline {
		t.Fatalf("err = %v, want deadline *APIError", err)
	}
	if ae.Status != http.StatusOK {
		t.Fatalf("mid-stream error status = %d, want 200 (stream was committed)", ae.Status)
	}
	if seen != 1 {
		t.Fatalf("saw %d answers before the error, want 1", seen)
	}

	truncated := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"type":"header","key":"k","rewriting":"v1","exact":true,"mode":"rewriting","graph":"g","nodes":2,"edges":1}
`)
	}
	rep.respond.Store(&truncated)
	if _, err := c.Query(context.Background(), QueryRequest{
		Query: "a", Views: map[string]string{"v1": "a"}, Graph: "g",
	}, nil); err == nil {
		t.Fatal("truncated stream must error")
	}
}

// TestRegisterGraphFansOut: registration reaches every replica, and
// succeeds as long as at least one accepted.
func TestRegisterGraphFansOut(t *testing.T) {
	reps, addrs := clusterOf(t, 3)
	info := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"name":"g","nodes":4,"edges":3}`)
	}
	for _, rep := range reps {
		rep.respond.Store(&info)
	}
	c, err := New(addrs)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := c.RegisterGraph(context.Background(), RegisterGraphRequest{Name: "g", Spec: "chain:4"})
	if err != nil {
		t.Fatal(err)
	}
	if gi.Nodes != 4 {
		t.Fatalf("info = %+v", gi)
	}
	for i, rep := range reps {
		if rep.hits.Load() != 1 {
			t.Errorf("replica %d saw %d registrations, want 1", i, rep.hits.Load())
		}
	}
}

// TestPlanKeysMatchEngine pins client-side routing keys to the keys
// the engine actually caches under — client placement and server
// placement must agree byte-for-byte.
func TestPlanKeysMatchEngine(t *testing.T) {
	inst, err := rwReq.Instance()
	if err != nil {
		t.Fatal(err)
	}
	key, err := rwReq.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != string(engine.InstanceKey(inst, false)) {
		t.Fatal("RewriteRequest.PlanKey must equal engine.InstanceKey")
	}
	partial := rwReq
	partial.Partial = true
	pkey, err := partial.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	if pkey == key {
		t.Fatal("partial request must key differently")
	}
	qkey, err := QueryRequest{Query: rwReq.Query, Views: rwReq.Views, Graph: "g"}.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	if qkey != key {
		t.Fatal("QueryRequest routes by the full instance key")
	}

	rpqReq := RPQRequest{
		Query:    "fa",
		Formulas: map[string]string{"fa": "=a"},
		Views:    []RPQView{{Name: "q1", Query: "fa"}},
		Theory:   &Theory{Constants: []string{"a"}},
	}
	ereq, err := rpqReq.ToEngine()
	if err != nil {
		t.Fatal(err)
	}
	rkey, err := rpqReq.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	if rkey != string(engine.RPQKey(ereq.Query, ereq.Views, ereq.Theory, rpq.Grounded)) {
		t.Fatal("RPQRequest.PlanKey must equal engine.RPQKey")
	}
	direct := rpqReq
	direct.Method = "direct"
	dkey, err := direct.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	if dkey == rkey {
		t.Fatal("method must be part of the key")
	}
	bad := rpqReq
	bad.Method = "nope"
	if _, err := bad.PlanKey(); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestParseServers(t *testing.T) {
	got := ParseServers(" a:1, ,b:2,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("ParseServers = %v", got)
	}
	if ParseServers("") != nil {
		t.Fatal("empty flag parses to nil")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("New with no servers must fail")
	}
}

func TestTheoryWireRoundTrip(t *testing.T) {
	tt := theory.New()
	tt.AddConstants("rome", "jerusalem", "athens")
	tt.Declare("city", "rome", "jerusalem")
	wire := TheoryWire(tt)
	if len(wire.Constants) != 3 || len(wire.Predicates["city"]) != 2 {
		t.Fatalf("wire theory = %+v", wire)
	}
	req := RPQRequest{Query: "c", Formulas: map[string]string{"c": "city"}, Theory: wire}
	ereq, err := req.ToEngine()
	if err != nil {
		t.Fatal(err)
	}
	if ereq.Theory.Domain().Len() != 3 {
		t.Fatalf("round-tripped domain = %v", ereq.Theory.Domain().Names())
	}
	ok, err := ereq.Theory.EntailsName(theory.Pred("city"), "rome")
	if err != nil || !ok {
		t.Fatalf("city(rome) lost in round trip: %v %v", ok, err)
	}
	if ok, _ := ereq.Theory.EntailsName(theory.Pred("city"), "athens"); ok {
		t.Fatal("city(athens) invented by round trip")
	}
	if TheoryWire(nil) != nil {
		t.Fatal("nil interpretation must stay nil on the wire")
	}
}
