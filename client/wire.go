// Package regexrwclient is the typed Go client for the regexrw HTTP
// API, and the single definition of its wire schema: cmd/serve aliases
// these types for its request/response bodies, so client and server
// cannot drift apart field by field.
//
// The client is cluster-aware. Plan keys are canonical SHA-256 hashes
// of the rewriting instance (see internal/engine), and a multi-replica
// deployment partitions the key space over a consistent-hash ring
// (internal/cluster). The client computes the same key and the same
// ring placement the servers use, dials the owning replica directly —
// saving the server-side forwarding hop — and falls back to any
// replica when the owner is unreachable (every replica can compute
// every plan; ownership only concentrates cache locality).
package regexrwclient

import (
	"fmt"
	"time"

	"regexrw/internal/core"
	"regexrw/internal/engine"
	"regexrw/internal/obs"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// EnvelopeVersion is the version stamped into every error envelope as
// its "v" field. Version 2 added v itself plus the cluster fields
// (owner on not_owner, degraded on degraded-mode responses); version 1
// envelopes carried neither and decode with V == 0.
const EnvelopeVersion = 2

// Error codes carried by ErrorDetail.Code. Every code the server can
// emit is enumerated here; see docs/SERVING.md for the full table with
// status codes and semantics.
const (
	CodeBadRequest     = "bad_request"     // 400: malformed body or unparsable instance
	CodeUnknownGraph   = "unknown_graph"   // 404: graph name not registered
	CodeNotOwner       = "not_owner"       // 421: replica does not own the key; Owner names who does
	CodeBudgetExceeded = "budget_exceeded" // 422: a budget stage ran out (Stage/Resource/Limit/Used set)
	CodeStateLimit     = "state_limit"     // 422: automaton state cap hit
	CodeQueueFull      = "queue_full"      // 429: admission queue full, retry later
	CodeDeadline       = "deadline"        // 504: per-request timeout elapsed
	CodeClosed         = "closed"          // 503: engine shutting down
	CodeCanceled       = "canceled"        // 499: client went away
	CodeInternal       = "internal"        // 500: server fault
)

// RewriteRequest is the body of POST /v1/rewrite.
type RewriteRequest struct {
	// Query is E0 in the concrete syntax; Views maps view names to
	// expressions.
	Query string            `json:"query"`
	Views map[string]string `json:"views"`
	// Partial also runs the anytime partial-rewriting search when the
	// maximal rewriting is not exact.
	Partial bool `json:"partial,omitempty"`
	// MaxStates/MaxTransitions/TimeoutMS tighten the engine's per-request
	// governance defaults; they can only lower the server's caps.
	MaxStates      int   `json:"max_states,omitempty"`
	MaxTransitions int   `json:"max_transitions,omitempty"`
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	// Trace attaches a per-request tracer and returns the exported span
	// tree in the response.
	Trace bool `json:"trace,omitempty"`
}

// Instance parses the request into the engine's instance form.
func (r RewriteRequest) Instance() (*core.Instance, error) {
	return core.ParseInstance(r.Query, r.Views)
}

// PlanKey computes the canonical plan key this request caches under —
// the routing key for cluster placement. It fails exactly when the
// server would answer 400.
func (r RewriteRequest) PlanKey() (string, error) {
	inst, err := r.Instance()
	if err != nil {
		return "", err
	}
	return string(engine.InstanceKey(inst, r.Partial)), nil
}

// RPQRequest is the body of POST /v1/rpq.
type RPQRequest struct {
	// Query is the path expression over formula names; Formulas defines
	// each name (theory formula syntax: "=a", "city", "p && !q", …).
	Query    string            `json:"query"`
	Formulas map[string]string `json:"formulas"`
	// Views are the view path queries; a view without its own formulas
	// shares the query's.
	Views []RPQView `json:"views"`
	// Theory is the finite interpretation; omitted means the empty
	// theory.
	Theory *Theory `json:"theory,omitempty"`
	// Method is "grounded" (default), "direct" or "compressed".
	Method string `json:"method,omitempty"`

	MaxStates      int   `json:"max_states,omitempty"`
	MaxTransitions int   `json:"max_transitions,omitempty"`
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	Trace          bool  `json:"trace,omitempty"`
}

// RPQView is one view path query in an RPQRequest.
type RPQView struct {
	Name     string            `json:"name"`
	Query    string            `json:"query"`
	Formulas map[string]string `json:"formulas,omitempty"`
}

// Theory is the wire form of a finite interpretation.
type Theory struct {
	Constants  []string            `json:"constants"`
	Predicates map[string][]string `json:"predicates,omitempty"`
}

// TheoryWire converts a parsed interpretation (e.g. read from a theory
// file with theory.Read) into the wire form — the inverse of the
// ToEngine conversion, for clients that load theories locally and ship
// them to a server.
func TheoryWire(tt *theory.Interpretation) *Theory {
	if tt == nil {
		return nil
	}
	w := &Theory{Constants: tt.Domain().Names()}
	for _, pred := range tt.Predicates() {
		members := []string{}
		for _, sym := range tt.Satisfiers(theory.Pred(pred)) {
			members = append(members, tt.Domain().Name(sym))
		}
		if w.Predicates == nil {
			w.Predicates = map[string][]string{}
		}
		w.Predicates[pred] = members
	}
	return w
}

// ToEngine parses the wire form into an engine RPQRequest; every error
// here is the client's (the server answers 400 with the same message).
func (r RPQRequest) ToEngine() (engine.RPQRequest, error) {
	var method rpq.Method
	switch r.Method {
	case "", "grounded":
		method = rpq.Grounded
	case "direct":
		method = rpq.Direct
	case "compressed":
		method = rpq.Compressed
	default:
		return engine.RPQRequest{}, fmt.Errorf("unknown method %q (want grounded, direct or compressed)", r.Method)
	}
	tt := theory.New()
	if r.Theory != nil {
		tt.AddConstants(r.Theory.Constants...)
		// String-keyed, so iteration order is not analyzer-relevant;
		// Declare only accumulates membership sets and the
		// interpretation canonicalizes on read.
		for pred, members := range r.Theory.Predicates {
			tt.Declare(pred, members...)
		}
	}
	q0, err := rpq.ParseQuery(r.Query, r.Formulas)
	if err != nil {
		return engine.RPQRequest{}, err
	}
	views := make([]rpq.View, 0, len(r.Views))
	for _, v := range r.Views {
		if v.Name == "" {
			return engine.RPQRequest{}, fmt.Errorf("view without a name")
		}
		formulas := v.Formulas
		if formulas == nil {
			formulas = r.Formulas
		}
		vq, err := rpq.ParseQuery(v.Query, formulas)
		if err != nil {
			return engine.RPQRequest{}, fmt.Errorf("view %s: %w", v.Name, err)
		}
		views = append(views, rpq.View{Name: v.Name, Query: vq})
	}
	return engine.RPQRequest{
		Query: q0, Views: views, Theory: tt, Method: method,
		MaxStates:      r.MaxStates,
		MaxTransitions: r.MaxTransitions,
		Timeout:        time.Duration(r.TimeoutMS) * time.Millisecond,
	}, nil
}

// PlanKey computes the canonical plan key for the RPQ request.
func (r RPQRequest) PlanKey() (string, error) {
	ereq, err := r.ToEngine()
	if err != nil {
		return "", err
	}
	return string(engine.RPQKey(ereq.Query, ereq.Views, ereq.Theory, ereq.Method)), nil
}

// PlanResponse is the successful response of both rewrite endpoints.
type PlanResponse struct {
	// Key is the plan's canonical cache key.
	Key string `json:"key"`
	// Rewriting is the (maximal) rewriting as an expression over view
	// names.
	Rewriting string `json:"rewriting"`
	// Exact / Verdict report exactness; Verdict is "yes", "no" or
	// "unknown" (budget ran out before the check decided).
	Exact   bool   `json:"exact"`
	Verdict string `json:"verdict"`
	// Witness is a shortest word of L(E0) \ exp(L(R)) when Verdict is
	// "no".
	Witness []string `json:"witness,omitempty"`
	// ShortestWord is a shortest view-word with non-empty expansion.
	ShortestWord []string `json:"shortest_word,omitempty"`
	// Empty / SigmaEmpty are the Section 3.2 emptiness diagnostics.
	Empty      bool `json:"empty"`
	SigmaEmpty bool `json:"sigma_empty"`
	// States is the number of automaton states the cold compile
	// materialized (cache hits repeat the cold number: that is the work
	// the hit saved).
	States int64 `json:"states"`
	// Partial reports the partial-rewriting search when requested.
	Partial *PartialResult `json:"partial,omitempty"`
	// Degraded reports that the answering replica did not own the plan
	// key and computed locally because the owner was unreachable: the
	// answer is correct, but was a cold compile somewhere it will not be
	// cached long.
	Degraded bool `json:"degraded,omitempty"`
	// Trace is the per-request span tree when the request set trace.
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

// PartialResult reports the anytime partial-rewriting search.
type PartialResult struct {
	// Exact reports whether the search proved its extension exact before
	// the budget ran out.
	Exact bool `json:"exact"`
	// Added lists the elementary views the search added.
	Added []string `json:"added,omitempty"`
	// Rewriting is the extended instance's rewriting.
	Rewriting string `json:"rewriting"`
	// Stage names the budget stage that stopped an inexact search.
	Stage string `json:"stage,omitempty"`
}

// ErrorDetail is the structured error envelope, shared by every
// endpoint (and by mid-stream /v1/query error lines). Resource
// exhaustion is a client-addressable condition (raise the caps or
// simplify the instance), not a server fault, so it maps to 4xx with
// the stage diagnostics the budget layer recorded.
type ErrorDetail struct {
	// V is the envelope version (EnvelopeVersion); 0 means a pre-cluster
	// version-1 envelope.
	V int `json:"v,omitempty"`
	// Code is one of the Code* constants above.
	Code    string `json:"code"`
	Message string `json:"message"`
	// Stage/Resource/Limit/Used carry the budget diagnostics for
	// budget_exceeded.
	Stage    string `json:"stage,omitempty"`
	Resource string `json:"resource,omitempty"`
	Limit    int64  `json:"limit,omitempty"`
	Used     int64  `json:"used,omitempty"`
	// Owner names the replica owning the key when Code is not_owner.
	Owner string `json:"owner,omitempty"`
	// Degraded marks an error produced while computing locally for an
	// unreachable owner.
	Degraded bool `json:"degraded,omitempty"`
}

// Error makes ErrorDetail usable as a Go error.
func (e ErrorDetail) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}

// ErrorEnvelope is the JSON shape errors travel in: {"error": {...}}.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// QueryRequest is the body of POST /v1/query: a rewriting problem plus
// the handle of a registered graph to answer it over.
type QueryRequest struct {
	Query string            `json:"query"`
	Views map[string]string `json:"views"`
	// Graph names a database registered via -graph or POST /v1/graphs.
	Graph string `json:"graph"`
	// Mode is "rewriting" (default: evaluate the maximal rewriting; the
	// graph's edge labels are view names) or "query" (evaluate E0; the
	// labels are Σ symbols).
	Mode string `json:"mode,omitempty"`
	// Source restricts to one source node; with Target too, the request
	// is boolean.
	Source string `json:"source,omitempty"`
	Target string `json:"target,omitempty"`
	// MaxAnswers caps the streamed answers; the trailer reports
	// truncation.
	MaxAnswers int `json:"max_answers,omitempty"`

	MaxStates      int   `json:"max_states,omitempty"`
	MaxTransitions int   `json:"max_transitions,omitempty"`
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
}

// PlanKey computes the canonical plan key of the query's rewriting
// problem (the full, non-partial instance) — the cluster routing key.
func (q QueryRequest) PlanKey() (string, error) {
	inst, err := core.ParseInstance(q.Query, q.Views)
	if err != nil {
		return "", err
	}
	return string(engine.InstanceKey(inst, false)), nil
}

// QueryHeader is the first NDJSON line of a /v1/query response.
type QueryHeader struct {
	Type      string `json:"type"` // "header"
	Key       string `json:"key"`
	Rewriting string `json:"rewriting"`
	Exact     bool   `json:"exact"`
	Mode      string `json:"mode"`
	Graph     string `json:"graph"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	// Degraded mirrors PlanResponse.Degraded for the streaming endpoint.
	Degraded bool `json:"degraded,omitempty"`
}

// QueryAnswer is one streamed answer pair.
type QueryAnswer struct {
	Type string `json:"type"` // "answer"
	From string `json:"from"`
	To   string `json:"to"`
}

// QueryTrailer is the final NDJSON line of a successful response.
type QueryTrailer struct {
	Type      string `json:"type"` // "trailer"
	Answers   int    `json:"answers"`
	Truncated bool   `json:"truncated,omitempty"`
	// Matched is present on boolean requests (source and target given).
	Matched *bool `json:"matched,omitempty"`
}

// QueryErrorLine reports a mid-stream failure (budget exhaustion,
// deadline) after the header has been sent: the standard error
// envelope, as its own NDJSON line instead of an HTTP status.
type QueryErrorLine struct {
	Type  string      `json:"type"` // "error"
	Error ErrorDetail `json:"error"`
}

// RegisterGraphRequest is the body of POST /v1/graphs: a generator
// spec, a server-side file path, or the graph itself in the text
// codec.
type RegisterGraphRequest struct {
	Name string `json:"name"`
	// Spec is a workload generator spec ("grid:100x100",
	// "powerlaw:1000:10000:7", …) or a server-side file path.
	Spec string `json:"spec,omitempty"`
	// Text is the database in the graph text codec ("from label to"
	// lines), for clients shipping their own data.
	Text string `json:"text,omitempty"`
}

// GraphInfo is one registry entry in GET /v1/graphs.
type GraphInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}
