package regexrw_test

import (
	"context"
	"fmt"
	"log"

	"regexrw"
)

// The recommended serving path: an Engine compiles the paper's
// Example 2 into a cached, immutable plan.
func ExampleNewEngine() {
	eng := regexrw.NewEngine(
		regexrw.WithBudgetDefaults(200_000, 0),
		regexrw.WithEngineMetrics(regexrw.NewMetrics()),
	)
	defer eng.Close()
	plan, err := eng.Rewrite(context.Background(), regexrw.Request{
		Query: "a·(b·a+c)*",
		Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewriting:", plan.Regex())
	fmt.Println("exact:", plan.IsExact())
	// Any respelling of the same problem is a cache hit on the same plan.
	again, err := eng.Rewrite(context.Background(), regexrw.Request{
		Query: "a (b a + c)*",
		Views: map[string]string{"e3": "c", "e2": "a . c* . b", "e1": "a"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cache hit:", again == plan)
	// Output:
	// rewriting: e2*·e1·e3*
	// exact: true
	// cache hit: true
}

// The paper's Example 2: rewriting a·(b·a+c)* using the views
// e1 = a, e2 = a·c*·b, e3 = c.
func ExampleRewrite() {
	r, err := regexrw.Rewrite("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := r.IsExact()
	fmt.Println("rewriting:", r.Regex())
	fmt.Println("exact:", exact)
	// Output:
	// rewriting: e2*·e1·e3*
	// exact: true
}

// Non-exact rewritings come with a witness word the views cannot reach.
func ExampleRewriting_IsExact() {
	r, err := regexrw.Rewrite("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b",
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, witness := r.IsExact()
	fmt.Println("exact:", exact)
	fmt.Print("witness:")
	for _, s := range witness {
		fmt.Print(" ", r.Sigma().Name(s))
	}
	fmt.Println()
	// Output:
	// exact: false
	// witness: a c
}

// The paper's Example 3: when no exact rewriting exists, a minimal set
// of elementary views that restores exactness is searched for.
func ExamplePartialRewriting() {
	inst, err := regexrw.ParseInstance("a·(b+c)", map[string]string{
		"q1": "a", "q2": "b",
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := regexrw.PartialRewriting(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("added elementary views:", res.Added)
	fmt.Println("rewriting:", res.Rewriting.Regex())
	// Output:
	// added elementary views: [c]
	// rewriting: q1·(q2+c)
}

// The possibility rewriting captures the view words that MAY produce a
// word of the query — the dual of the maximal contained rewriting.
func ExamplePossibilityRewriting() {
	inst, err := regexrw.ParseInstance("a·b", map[string]string{
		"e1": "a+c", "e2": "b",
	})
	if err != nil {
		log.Fatal(err)
	}
	contained := regexrw.MaximalRewriting(inst)
	possible := regexrw.PossibilityRewriting(inst)
	fmt.Println("e1·e2 certain: ", contained.Accepts("e1", "e2"))
	fmt.Println("e1·e2 possible:", possible.Accepts("e1", "e2"))
	// Output:
	// e1·e2 certain:  false
	// e1·e2 possible: true
}

// Regular path queries: evaluate over a graph database, rewrite in
// terms of views, and answer from the views alone.
func ExampleRewriteRPQ() {
	t := regexrw.NewTheory()
	t.AddConstants("rome", "district", "restaurant")

	db := regexrw.NewDB(t)
	db.AddEdge("root", "rome", "romePage")
	db.AddEdge("romePage", "district", "trastevere")
	db.AddEdge("trastevere", "restaurant", "carlotta")

	q0, err := regexrw.ParseQuery("r·d*·t", map[string]string{
		"r": "=rome", "d": "=district", "t": "=restaurant",
	})
	if err != nil {
		log.Fatal(err)
	}
	view := func(expr string, formulas map[string]string) *regexrw.Query {
		q, err := regexrw.ParseQuery(expr, formulas)
		if err != nil {
			log.Fatal(err)
		}
		return q
	}
	views := []regexrw.RPQView{
		{Name: "vr", Query: view("r", map[string]string{"r": "=rome"})},
		{Name: "vd", Query: view("d", map[string]string{"d": "=district"})},
		{Name: "vt", Query: view("t", map[string]string{"t": "=restaurant"})},
	}
	rw, err := regexrw.RewriteRPQ(q0, views, t, regexrw.Direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewriting:", rw.RegexOverViews())
	for _, p := range db.PairNames(rw.AnswerUsingViews(db)) {
		fmt.Println("answer:", p)
	}
	// Output:
	// rewriting: vr·vd*·vt
	// answer: root→carlotta
}

// Generalized path queries (the conclusions' second extension) ask for
// tuples of nodes chained by component queries.
func ExampleChainQuery() {
	t := regexrw.NewTheory()
	t.AddConstants("a", "b")
	db := regexrw.NewDB(t)
	db.AddEdge("s", "a", "m")
	db.AddEdge("m", "b", "u")

	qa, _ := regexrw.ParseQuery("f", map[string]string{"f": "=a"})
	qb, _ := regexrw.ParseQuery("f", map[string]string{"f": "=b"})
	chain := regexrw.ChainQuery(qa, qb)
	tuples, err := chain.Answer(t, db)
	if err != nil {
		log.Fatal(err)
	}
	for _, tu := range tuples {
		for i, v := range chain.Vars() {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s=%s", v, db.NodeName(tu[i]))
		}
		fmt.Println()
	}
	// Output:
	// x1=s x2=m x3=u
}
