// Package regexrw implements rewriting of regular expressions and
// regular path queries using views, after Calvanese, De Giacomo,
// Lenzerini and Vardi, "Rewriting of Regular Expressions and Regular
// Path Queries" (PODS 1999).
//
// Given a regular expression E0 and a set of views E1,…,Ek (each a
// named regular expression over the same alphabet Σ), the library
// computes the Σ_E-maximal rewriting of E0 in terms of the view
// symbols — the largest language over the view alphabet whose
// expansion is contained in L(E0) — decides whether that rewriting is
// exact, and searches for partial rewritings that add elementary
// views when it is not. A second layer lifts all of this to regular
// path queries over semi-structured (edge-labeled graph) databases,
// where queries are regular languages over unary formulae of a finite
// complete theory.
//
// Quick start — create an Engine once and serve plans from it:
//
//	eng := regexrw.NewEngine(regexrw.WithBudgetDefaults(200_000, 0))
//	plan, err := eng.Rewrite(ctx, regexrw.Request{
//		Query: "a·(b·a+c)*",
//		Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
//	})
//	// plan.Regex()   →  e2*·e1·e3*
//	// plan.IsExact() →  true
//
// Repeated requests for the same problem — under any spelling — are
// served from the engine's plan cache. See serving.go for the engine
// surface and the error taxonomy; the free functions below compute the
// same constructions one call at a time.
//
// The concrete expression syntax follows the paper: `+` is union, `·`
// (or `.`, or juxtaposition with spaces) is concatenation, `*` is
// Kleene star, `?` option, `ε`/`eps` the empty word and `∅`/`empty`
// the empty language. Symbols are multi-character identifiers.
//
// The package is a facade over the implementation packages under
// internal/: automata (NFA/DFA toolkit), regex (syntax), core (the
// rewriting constructions of Section 2 and the decision procedures of
// Section 3), theory/graph/rpq (Section 4), workload and experiments
// (the reproduction harness).
package regexrw

import (
	"context"

	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
	"regexrw/internal/regex"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// ---- Resource governance ----
//
// Every construction here is exponential or worse — the maximal
// rewriting is 2EXPTIME-complete (Theorem 5), exactness
// 2EXPSPACE-complete (Theorem 9), and Theorem 8 exhibits inputs whose
// rewriting must blow up doubly exponentially — so callers facing
// untrusted inputs should govern each run with a Budget and a context
// deadline:
//
//	b := regexrw.NewBudget(100_000, 0) // cap materialized states
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	r, err := regexrw.MaximalRewritingContext(regexrw.WithBudget(ctx, b), inst)
//	var ex *regexrw.BudgetExceeded
//	if errors.As(err, &ex) {
//		// ex.Stage names the construction that gave out.
//	}
//
// All ...Context entry points draw from the context's budget; the
// non-Context conveniences run ungoverned.

// Budget is a shared resource meter for one pipeline run: all stages
// draw materialized states and transitions from the same pool.
type Budget = budget.Budget

// BudgetExceeded is the typed error a governed run fails with when a
// cap trips; it records the pipeline stage, the resource, the limit
// and the count that exceeded it.
type BudgetExceeded = budget.ExceededError

// NewBudget returns a budget capping the total number of materialized
// automaton states and transitions; zero (or negative) means unlimited
// for that resource.
func NewBudget(maxStates, maxTransitions int) *Budget {
	return budget.New(budget.MaxStates(maxStates), budget.MaxTransitions(maxTransitions))
}

// WithBudget returns a context carrying the budget; every ...Context
// entry point downstream draws from it. Combine with
// context.WithTimeout for a wall-clock deadline.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return budget.With(ctx, b)
}

// ---- Observability ----
//
// A Tracer on the context records a tree of named stage spans — each
// pipeline construction with its wall time plus the states, transitions
// and cache probes it materialized, exactly as charged on the budget —
// and a Metrics registry accumulates the same counts per stage. Both
// are off by default and free when off; see docs/OBSERVABILITY.md.
//
//	tr := regexrw.NewTracer()
//	m := regexrw.NewMetrics()
//	ctx := regexrw.WithMetrics(regexrw.WithTracer(ctx, tr), m)
//	r, err := regexrw.MaximalRewritingContext(ctx, inst)
//	tr.WriteJSON(os.Stdout)      // span tree
//	m.WritePrometheus(os.Stdout) // per-stage counters

// Tracer records one pipeline run as a tree of stage spans and exports
// it as JSON.
type Tracer = obs.Tracer

// Metrics is a registry of named atomic counters and gauges with
// snapshot, Prometheus-text and expvar exposition.
type Metrics = obs.Registry

// NewTracer returns an empty tracer; install it with WithTracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewDeterministicTracer returns a tracer that records no wall-clock
// values, making its JSON export a pure function of the traced
// computation — byte-comparable across runs (used by golden-trace
// tests).
func NewDeterministicTracer() *Tracer { return obs.NewTracer(obs.Deterministic()) }

// WithTracer returns a context carrying the tracer; every ...Context
// entry point downstream records its stages on it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return obs.WithTracer(ctx, t)
}

// NewMetrics returns an empty metrics registry; install it with
// WithMetrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WithMetrics returns a context carrying the registry; every metered
// stage downstream feeds "<stage>.states" / "<stage>.transitions"
// counters into it.
func WithMetrics(ctx context.Context, m *Metrics) context.Context {
	return obs.WithMetrics(ctx, m)
}

// GlobalMetrics returns the process-wide registry holding metrics with
// no per-run context, such as the automata cache counters
// (automata.cache.subset_hits, automata.cache.memo_reuses, …).
func GlobalMetrics() *Metrics { return obs.Default }

// Expr is a parsed regular expression (AST).
type Expr = regex.Node

// ParseExpr parses a regular expression in the paper's syntax.
func ParseExpr(s string) (*Expr, error) { return regex.Parse(s) }

// MustParseExpr is ParseExpr that panics on error.
func MustParseExpr(s string) *Expr { return regex.MustParse(s) }

// EquivalentExprs reports whether two expressions denote the same
// language.
func EquivalentExprs(a, b *Expr) bool { return regex.Equivalent(a, b) }

// View is a named view definition for regular-expression rewriting.
type View = core.View

// Instance is a rewriting problem: a query expression and views.
type Instance = core.Instance

// NewInstance builds an instance from parsed expressions.
func NewInstance(query *Expr, views []View) (*Instance, error) {
	return core.NewInstance(query, views)
}

// ParseInstance builds an instance from concrete syntax; views map
// view names to expressions.
func ParseInstance(query string, views map[string]string) (*Instance, error) {
	return core.ParseInstance(query, views)
}

// Rewriting is a computed Σ_E-maximal rewriting. See core.Rewriting for
// the full method set: Regex, NFA, MinimalDFA, Accepts, IsExact,
// IsEmpty, IsSigmaEmpty, Expand, ShortestWord, and the construction's
// intermediate automata Ad and APrime.
type Rewriting = core.Rewriting

// Rewrite parses the instance and computes its Σ_E-maximal rewriting
// (Section 2 of the paper; Theorem 2).
//
// Deprecated: use Engine.Rewrite, which governs, caches and
// deduplicates the compile; this ungoverned one-shot remains for
// compatibility and for interactive use on trusted inputs.
func Rewrite(query string, views map[string]string) (*Rewriting, error) {
	inst, err := core.ParseInstance(query, views)
	if err != nil {
		return nil, err
	}
	return core.MaximalRewriting(inst), nil
}

// MaximalRewriting computes the Σ_E-maximal rewriting of an instance.
//
// Deprecated: use Engine.Rewrite with a Request carrying the Instance;
// the engine variant is governed, cached and deduplicated. This
// ungoverned form remains for compatibility.
func MaximalRewriting(inst *Instance) *Rewriting { return core.MaximalRewriting(inst) }

// MaximalRewritingContext is MaximalRewriting with cancellation for the
// exponential determinizations of the construction.
//
// Deprecated: use Engine.Rewrite — it honors the same context budget
// and deadline, and additionally caches the compiled plan. This form
// remains for one-shot governed runs.
func MaximalRewritingContext(ctx context.Context, inst *Instance) (*Rewriting, error) {
	return core.MaximalRewritingContext(ctx, inst)
}

// MaximalRewritingBounded is MaximalRewriting with a resource guard:
// the construction is doubly exponential in the worst case, so every
// determinization is capped at maxStates; exceeding the cap fails with
// an error instead of exhausting memory (wrapping both ErrStateLimit
// and the *BudgetExceeded).
//
// Deprecated: use Engine.Rewrite with WithBudgetDefaults or
// Request.MaxStates, which reports cap trips as *BudgetExceeded with
// the tripping stage. This wrapper remains for compatibility with the
// pre-budget API.
func MaximalRewritingBounded(inst *Instance, maxStates int) (*Rewriting, error) {
	return core.MaximalRewritingBounded(inst, maxStates)
}

// PartialRewritingContext is PartialRewriting with cancellation for the
// exponential subset search.
//
// Deprecated: use Engine.Rewrite with Request.Partial, which runs the
// anytime search under the engine's governance and caches the result on
// the plan (Plan.Partial); or PartialRewritingAnytime for the
// uncached anytime form.
func PartialRewritingContext(ctx context.Context, inst *Instance) (*PartialResult, error) {
	return core.PartialRewritingContext(ctx, inst)
}

// ExactVerdict is the three-valued outcome of a budgeted exactness
// check: yes, no, or unknown when the budget gave out first.
type ExactVerdict = core.ExactVerdict

// The exactness verdicts.
const (
	ExactUnknown = core.ExactUnknown
	ExactYes     = core.ExactYes
	ExactNo      = core.ExactNo
)

// ExactnessReport is the outcome of Rewriting.TryExactness: the
// verdict, the counterexample witness when the verdict is no, and the
// stopping reason and stage when it is unknown.
type ExactnessReport = core.ExactnessReport

// AnytimePartialResult is the outcome of PartialRewritingAnytime: a
// sound rewriting plus whether the search proved it exact before the
// budget ran out.
type AnytimePartialResult = core.AnytimePartialResult

// PartialRewritingAnytime is the graceful-degradation variant of
// PartialRewritingContext: when the budget or deadline gives out
// mid-search it returns the sound best-so-far rewriting with
// Exact=false and the stopping reason, instead of an error.
//
// Deprecated: use Engine.Rewrite with Request.Partial; the engine runs
// this same anytime search when the maximal rewriting is not exact and
// caches the outcome on the plan (Plan.Partial).
func PartialRewritingAnytime(ctx context.Context, inst *Instance) (*AnytimePartialResult, error) {
	return core.PartialRewritingAnytime(ctx, inst)
}

// ExistsExactRewriting reports whether the instance admits an exact
// rewriting (Corollary 4; 2EXPSPACE-complete by Theorem 9).
func ExistsExactRewriting(inst *Instance) bool { return core.ExistsExactRewriting(inst) }

// HasNonemptyRewriting reports whether some rewriting has a non-empty
// expansion (EXPSPACE-complete by Theorem 7).
func HasNonemptyRewriting(inst *Instance) bool { return core.HasNonemptyRewriting(inst) }

// PartialResult is the outcome of a partial-rewriting search at the
// regular-expression level.
type PartialResult = core.PartialResult

// PartialRewriting finds a smallest set of elementary views whose
// addition makes the rewriting exact (Section 4.3 lifted to regular
// expressions).
//
// Deprecated: use Engine.Rewrite with Request.Partial for the governed,
// cached form; this ungoverned search (up to 2^|Σ| candidate
// extensions) remains for interactive use on trusted inputs.
func PartialRewriting(inst *Instance) (*PartialResult, error) {
	return core.PartialRewriting(inst)
}

// Possibility is the dual (possibility) rewriting: the view words whose
// expansion intersects L(E0). See core.Possibility.
type Possibility = core.Possibility

// PossibilityRewriting computes the possibility rewriting — the upper
// envelope of the "minimal containing rewritings" raised in the paper's
// conclusions as the dual of the maximal contained rewriting.
func PossibilityRewriting(inst *Instance) *Possibility {
	return core.PossibilityRewriting(inst)
}

// ExistsContainingRewriting reports whether some rewriting's expansion
// contains L(E0).
func ExistsContainingRewriting(inst *Instance) bool {
	return core.ExistsContainingRewriting(inst)
}

// ViewCosts assigns evaluation costs to views (e.g. extension
// cardinalities) for the cost-based rewriting choice of Section 4.3's
// closing remark.
type ViewCosts = core.ViewCosts

// PruneViews drops views the rewriting does not need, most expensive
// first, preserving the expansion language exactly.
func PruneViews(inst *Instance, costs ViewCosts) (*Instance, *Rewriting, error) {
	return core.PruneViews(inst, costs)
}

// ---- Regular path queries over semi-structured data (Section 4) ----

// Theory is a finite complete interpretation: the decidable complete
// first-order theory T of Section 4.1.
type Theory = theory.Interpretation

// NewTheory returns an empty interpretation.
func NewTheory() *Theory { return theory.New() }

// Formula is a unary formula of the theory.
type Formula = theory.Formula

// ParseFormula parses a formula ("city & !(=rome)", "=a | =b", …).
func ParseFormula(s string) (Formula, error) { return theory.ParseFormula(s) }

// DB is a semi-structured database: a directed multigraph with
// D-labeled edges.
type DB = graph.DB

// Pair is a query answer element.
type Pair = graph.Pair

// NewDB returns an empty database sharing the theory's domain when
// built with t.Domain(); pass nil for a standalone label alphabet.
func NewDB(t *Theory) *DB {
	if t == nil {
		return graph.New(nil)
	}
	return graph.New(t.Domain())
}

// Query is a regular path query: a regular expression over named unary
// formulae.
type Query = rpq.Query

// ParseQuery parses a regular path query; formulas map the expression's
// symbols to formula definitions.
func ParseQuery(expr string, formulas map[string]string) (*Query, error) {
	return rpq.ParseQuery(expr, formulas)
}

// AtomicQuery is the single-formula query used for atomic and
// elementary views.
func AtomicQuery(name string, f Formula) *Query { return rpq.Atomic(name, f) }

// RPQView is a named regular-path-query view.
type RPQView = rpq.View

// RPQMethod selects the rewriting construction for path queries.
type RPQMethod = rpq.Method

// Rewriting constructions for regular path queries: Grounded is the
// literal Theorem 11 route; Direct is the Section 4.2 optimization
// that never grounds the view automata.
const (
	Grounded   = rpq.Grounded
	Direct     = rpq.Direct
	Compressed = rpq.Compressed
)

// RPQRewriting is a computed Σ_Q-maximal rewriting of a path query.
type RPQRewriting = rpq.Rewriting

// RewriteRPQ computes the Σ_Q-maximal rewriting of a regular path
// query wrt views (Theorem 11).
//
// Deprecated: use Engine.RewriteRPQ, which replaces this positional
// signature with the RPQRequest options struct and adds governance and
// plan caching. This wrapper remains for compatibility.
func RewriteRPQ(q0 *Query, views []RPQView, t *Theory, method RPQMethod) (*RPQRewriting, error) {
	return rpq.Rewrite(q0, views, t, method)
}

// RPQPartialResult is the outcome of a partial-rewriting search for
// path queries.
type RPQPartialResult = rpq.PartialResult

// PartialRewriteRPQ searches for an exact rewriting after adding atomic
// or elementary views (Section 4.3).
func PartialRewriteRPQ(q0 *Query, views []RPQView, t *Theory, method RPQMethod) (*RPQPartialResult, error) {
	return rpq.PartialRewrite(q0, views, t, rpq.DefaultCandidates(t), method)
}

// RPQAnytimePartialResult is the outcome of PartialRewriteRPQAnytime.
type RPQAnytimePartialResult = rpq.AnytimePartialResult

// PartialRewriteRPQAnytime is the graceful-degradation variant of
// PartialRewriteRPQ: when the budget or deadline carried by ctx gives
// out mid-search it returns the sound rewriting over the original
// views with Exact=false and the stopping reason, instead of an error.
func PartialRewriteRPQAnytime(ctx context.Context, q0 *Query, views []RPQView, t *Theory, method RPQMethod) (*RPQAnytimePartialResult, error) {
	return rpq.PartialRewriteAnytime(ctx, q0, views, t, rpq.DefaultCandidates(t), method)
}

// RPQPossibleRewriting is the possibility rewriting of a path query:
// evaluating it over materialized views yields the possible answers.
type RPQPossibleRewriting = rpq.PossibleRewriting

// RewritePossibleRPQ computes the possibility rewriting of a regular
// path query wrt views.
func RewritePossibleRPQ(q0 *Query, views []RPQView, t *Theory) (*RPQPossibleRewriting, error) {
	return rpq.RewritePossible(q0, views, t)
}

// CRPQ is a conjunctive regular path query; Chain builds the
// generalized path queries of the paper's conclusions.
type CRPQ = rpq.CRPQ

// CRPQAtom is one conjunct of a CRPQ.
type CRPQAtom = rpq.Atom

// CRPQTuple is one answer of a CRPQ.
type CRPQTuple = rpq.Tuple

// ChainQuery builds the generalized path query x1 Q1 x2 … Qn xn+1.
func ChainQuery(queries ...*Query) *CRPQ { return rpq.Chain(queries...) }
