package regexrw

// Benchmarks, one group per experiment in DESIGN.md's index (EX2, THM5,
// THM6, THM8, RPQ1, RPQ2), plus micro-benchmarks of the automata
// substrate. Absolute numbers depend on the machine; EXPERIMENTS.md
// records the shapes (who wins, how growth scales).

import (
	"fmt"
	"math/rand"
	"testing"

	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/rpq"
	"regexrw/internal/workload"
)

// BenchmarkEX2Rewriting measures the full Example 2 pipeline: parse,
// construct A_d, A', complement, and render the rewriting regex.
func BenchmarkEX2Rewriting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Rewrite("a·(b·a+c)*", map[string]string{
			"e1": "a", "e2": "a·c*·b", "e3": "c",
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Regex() == nil {
			b.Fatal("nil rewriting")
		}
	}
}

func BenchmarkTHM5Chain(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		inst := workload.ChainFamily(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MaximalRewriting(inst)
			}
		})
	}
}

func BenchmarkTHM5PairChain(b *testing.B) {
	for _, k := range []int{4, 16} {
		inst := workload.PairChainFamily(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MaximalRewriting(inst)
			}
		})
	}
}

func BenchmarkTHM5DetBlowup(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		inst := workload.DetBlowupFamily(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MaximalRewriting(inst)
			}
		})
	}
}

// BenchmarkTHM6Exactness compares the paper's on-the-fly exactness
// check (Theorem 6) with the materialized baseline on the same
// rewriting. The rewriting is rebuilt per iteration to defeat caching.
func BenchmarkTHM6Exactness(b *testing.B) {
	for _, n := range []int{8, 12} {
		inst := workload.DetBlowupFamily(n)
		b.Run(fmt.Sprintf("onTheFly/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.MaximalRewriting(inst)
				if ok, _ := r.IsExact(); !ok {
					b.Fatal("expected exact")
				}
			}
		})
		b.Run(fmt.Sprintf("materialized/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.MaximalRewriting(inst)
				if !r.IsExactMaterialized() {
					b.Fatal("expected exact")
				}
			}
		})
	}
}

// BenchmarkTHM8CounterFamily measures the lower-bound family: time and
// (reported once) the rewriting size, which must grow like n·2^n.
func BenchmarkTHM8CounterFamily(b *testing.B) {
	for _, n := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				inst := workload.CounterFamily(n)
				r := core.MaximalRewriting(inst)
				states = r.MinimalDFA().NumStates()
			}
			b.ReportMetric(float64(states), "rewriting-states")
		})
	}
}

// BenchmarkRPQ1Rewrite compares the grounded (Theorem 11) and direct
// (Section 4.2) RPQ rewriting constructions as the domain grows.
func BenchmarkRPQ1Rewrite(b *testing.B) {
	for _, d := range []int{16, 128, 1024} {
		r := rand.New(rand.NewSource(int64(d)))
		tt := workload.RandomTheory(r, workload.TheoryConfig{Constants: d, Predicates: 4, Density: 0.5})
		q0 := workload.RandomRPQ(r, tt, 3)
		views := []rpq.View{
			{Name: "u1", Query: workload.RandomRPQ(r, tt, 3)},
			{Name: "u2", Query: workload.RandomRPQ(r, tt, 3)},
			{Name: "u3", Query: workload.RandomRPQ(r, tt, 3)},
		}
		b.Run(fmt.Sprintf("grounded/D=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rpq.Rewrite(q0, views, tt, rpq.Grounded); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("direct/D=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rpq.Rewrite(q0, views, tt, rpq.Direct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRPQ2Eval measures query answering over growing graphs, for
// both evaluation strategies.
func BenchmarkRPQ2Eval(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	tt := workload.RandomTheory(r, workload.TheoryConfig{Constants: 5, Predicates: 3, Density: 0.5})
	q0, err := rpq.ParseQuery("p·any*·q", map[string]string{"p": "p1", "any": "true", "q": "p2"})
	if err != nil {
		b.Fatal(err)
	}
	for _, nodes := range []int{50, 200} {
		db := workload.RandomGraph(r, workload.GraphConfig{
			Nodes: nodes, Edges: nodes * 4, Labels: tt.Domain().Names(),
		})
		b.Run(fmt.Sprintf("grounded/nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q0.Answer(tt, db)
			}
		})
		b.Run(fmt.Sprintf("direct/nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q0.AnswerDirect(tt, db)
			}
		})
	}
}

// BenchmarkEX3Partial measures the Example 3 partial-rewriting search.
func BenchmarkEX3Partial(b *testing.B) {
	inst, err := ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.PartialRewriting(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDUAL1Possibility measures the dual (possibility) rewriting
// construction next to the maximal contained one on the same instances.
func BenchmarkDUAL1Possibility(b *testing.B) {
	for _, n := range []int{6, 10} {
		inst := workload.DetBlowupFamily(n)
		b.Run(fmt.Sprintf("contained/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MaximalRewriting(inst)
			}
		})
		b.Run(fmt.Sprintf("possibility/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.PossibilityRewriting(inst)
			}
		})
	}
}

// BenchmarkCOST1Prune measures cost-guided view pruning.
func BenchmarkCOST1Prune(b *testing.B) {
	inst, err := ParseInstance("a·b·c·d", map[string]string{
		"vAll": "a·b·c·d", "vAB": "a·b", "vCD": "c·d",
		"vA": "a", "vB": "b", "vC": "c", "vD": "d",
	})
	if err != nil {
		b.Fatal(err)
	}
	costs := core.ViewCosts{"vAll": 50, "vAB": 10, "vCD": 10}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PruneViews(inst, costs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPQ1Chain measures generalized-path-query evaluation as the
// chain length grows.
func BenchmarkGPQ1Chain(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	tt := workload.RandomTheory(r, workload.TheoryConfig{Constants: 4, Predicates: 2, Density: 0.6})
	db := workload.RandomGraph(r, workload.GraphConfig{Nodes: 30, Edges: 90, Labels: tt.Domain().Names()})
	for _, k := range []int{2, 4} {
		queries := make([]*rpq.Query, k)
		for i := range queries {
			queries[i] = workload.RandomRPQ(r, tt, 2)
		}
		chain := rpq.Chain(queries...)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chain.Answer(tt, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- substrate micro-benchmarks ----

func benchNFA(n int) *automata.NFA {
	inst := workload.DetBlowupFamily(n)
	return inst.Query.ToNFA(inst.Sigma())
}

func BenchmarkDeterminize(b *testing.B) {
	for _, n := range []int{8, 12} {
		nfa := benchNFA(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				automata.Determinize(nfa)
			}
		})
	}
}

func BenchmarkMinimize(b *testing.B) {
	for _, n := range []int{8, 12} {
		d := automata.Determinize(benchNFA(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.Minimize()
			}
		})
	}
}

func BenchmarkContainment(b *testing.B) {
	n1 := benchNFA(10)
	n2 := benchNFA(12)
	b.Run("onTheFly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			automata.ContainedIn(n1, n2)
		}
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			automata.ContainedInMaterialized(n1, n2)
		}
	})
}
