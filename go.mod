module regexrw

go 1.22
