package regexrw

// Trace-level contract of the strategy dispatcher: every forced
// override — context carrier or REGEXRW_STRATEGY environment variable —
// must be visible as the int64 `strategy` attribute on the spans of the
// constructions it steered. This is what makes ablations auditable: a
// bench arm claiming "forced sparse" can prove it from its trace.

import (
	"bytes"
	"context"
	"testing"

	"regexrw/internal/obs"
	"regexrw/internal/par"
	"regexrw/internal/strategy"
	"regexrw/internal/workload"
)

// strategyTrace runs the Example 2 pipeline under a deterministic
// tracer with ctx's strategy configuration and returns the parsed trace.
func strategyTrace(t *testing.T, decorate func(context.Context) context.Context) *obs.SpanJSON {
	t.Helper()
	inst, err := ParseInstance("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewDeterministicTracer()
	ctx := par.WithWorkers(WithTracer(context.Background(), tr), 2)
	ctx = decorate(ctx)
	r, err := MaximalRewritingContext(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.IsExactContext(ctx); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	root, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// spanStrategy returns the `strategy` attribute of the first span with
// the given name.
func spanStrategy(t *testing.T, root *obs.SpanJSON, name string) strategy.Choice {
	t.Helper()
	spans := obs.FindSpans(root, name)
	if len(spans) == 0 {
		t.Fatalf("trace has no %q span", name)
	}
	v, ok := spans[0].Attrs["strategy"]
	if !ok {
		t.Fatalf("span %q carries no strategy attribute: %v", name, spans[0].Attrs)
	}
	return strategy.Choice(v)
}

func TestForcedStrategyVisibleInTrace(t *testing.T) {
	forced := strategy.Config{
		FanOut:    strategy.FanOutForceParallel,
		Kernel:    strategy.KernelForceSparse,
		Exactness: strategy.ExactnessForceMaterialized,
	}
	root := strategyTrace(t, func(ctx context.Context) context.Context {
		return strategy.With(ctx, forced)
	})
	if got := spanStrategy(t, root, "core.transfer"); got != strategy.ChoiceParallel {
		t.Errorf("core.transfer strategy = %v, want parallel", got)
	}
	if got := spanStrategy(t, root, "automata.minimize"); got != strategy.ChoiceSparse {
		t.Errorf("automata.minimize strategy = %v, want sparse", got)
	}
	if got := spanStrategy(t, root, "core.exactness"); got != strategy.ChoiceMaterialized {
		t.Errorf("core.exactness strategy = %v, want materialized", got)
	}
	if len(obs.FindSpans(root, "automata.contained_in_materialized")) == 0 {
		t.Error("forced materialized exactness did not take the materialized containment path")
	}
}

func TestForcedStrategyEnvVisibleInTrace(t *testing.T) {
	t.Setenv("REGEXRW_STRATEGY", "fanout=seq,kernel=dense,exactness=fly")
	root := strategyTrace(t, func(ctx context.Context) context.Context { return ctx })
	if got := spanStrategy(t, root, "core.transfer"); got != strategy.ChoiceSequential {
		t.Errorf("core.transfer strategy = %v, want sequential", got)
	}
	if got := spanStrategy(t, root, "automata.minimize"); got != strategy.ChoiceDense {
		t.Errorf("automata.minimize strategy = %v, want dense", got)
	}
	if got := spanStrategy(t, root, "core.exactness"); got != strategy.ChoiceOnTheFly {
		t.Errorf("core.exactness strategy = %v, want on_the_fly", got)
	}
	if len(obs.FindSpans(root, "automata.contained_in")) == 0 {
		t.Error("forced on-the-fly exactness did not take the lazy containment path")
	}
}

// blowTrace runs the DetBlowup(4) pipeline — whose expansion looks
// nondeterministic in every state yet determinizes small — under a
// deterministic tracer and the given strategy config, and returns the
// parsed trace.
func blowTrace(t *testing.T, cfg strategy.Config) *obs.SpanJSON {
	t.Helper()
	inst := workload.DetBlowupFamily(4)
	tr := NewDeterministicTracer()
	ctx := strategy.With(WithTracer(context.Background(), tr), cfg)
	r, err := MaximalRewritingContext(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.IsExactContext(ctx); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	root, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestAdaptiveExactnessTrialMaterializes: on the DetBlowup family a
// static nondeterminism count would predict a huge det(B) (every state
// looks nondeterministic), yet the expansion actually determinizes
// small — the capped trial, which measures instead of predicting, must
// land the check on the materialized arm.
func TestAdaptiveExactnessTrialMaterializes(t *testing.T) {
	root := blowTrace(t, strategy.Config{})
	if got := spanStrategy(t, root, "core.exactness"); got != strategy.ChoiceMaterialized {
		t.Errorf("adaptive exactness on DetBlowup(4) = %v, want materialized via the capped trial", got)
	}
	if len(obs.FindSpans(root, "automata.contained_in_materialized")) == 0 {
		t.Error("trial did not take the materialized containment path")
	}
	if len(obs.FindSpans(root, "automata.contained_in")) != 0 {
		t.Error("a fitting trial must not fall back to the on-the-fly scan")
	}
}

// TestAdaptiveExactnessTrialFallsBack: with a cap the trial cannot fit,
// the abandoned materialization must be visible in the trace and the
// verdict must come from the on-the-fly arm.
func TestAdaptiveExactnessTrialFallsBack(t *testing.T) {
	root := blowTrace(t, strategy.Config{MaterializeMaxStates: 2})
	if got := spanStrategy(t, root, "core.exactness"); got != strategy.ChoiceOnTheFly {
		t.Errorf("exactness under cap 2 = %v, want on_the_fly fallback", got)
	}
	if len(obs.FindSpans(root, "automata.contained_in_materialized")) == 0 {
		t.Error("the abandoned trial should still appear in the trace")
	}
	if len(obs.FindSpans(root, "automata.contained_in")) == 0 {
		t.Error("the verdict must come from the on-the-fly scan after the trial abandons")
	}
}

// TestAdaptiveStrategyRecorded: even without overrides every decision
// lands on its span — the attribute is unconditional, only the value is
// adaptive. Example 2 is tiny, so the calibrated model must keep the
// fan-out sequential (the cost model's whole point: the paper-scale
// instance is cheaper inline).
func TestAdaptiveStrategyRecorded(t *testing.T) {
	root := strategyTrace(t, func(ctx context.Context) context.Context { return ctx })
	if got := spanStrategy(t, root, "core.transfer"); got != strategy.ChoiceSequential {
		t.Errorf("adaptive fan-out on Example 2 = %v, want sequential", got)
	}
	if got := spanStrategy(t, root, "core.exactness"); got != strategy.ChoiceMaterialized {
		t.Errorf("adaptive exactness on Example 2 = %v, want materialized (tiny expansion)", got)
	}
	if got := spanStrategy(t, root, "automata.minimize"); got != strategy.ChoiceDense {
		t.Errorf("adaptive kernel on Example 2 = %v, want dense (tiny table)", got)
	}
}
