// Command vet runs the repository's custom static analyzers over Go
// packages:
//
//	go run ./cmd/vet ./...
//	go run ./cmd/vet -list
//	go run ./cmd/vet -only mapiter ./internal/automata
//
// The analyzers (see internal/analysis) guard invariants the automata
// pipeline depends on: mapiter (no map-iteration order leaking into
// canonical output), ctxcheck (ctx-taking exponential entry points
// actually honor cancellation), and invariantcall (exported
// constructors run the regexrwdebug validation hooks). The command
// exits nonzero when any diagnostic is reported, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"regexrw/internal/analysis"
)

var all = []*analysis.Analyzer{
	analysis.MapIter,
	analysis.CtxCheck,
	analysis.InvariantCall,
}

func main() {
	list := flag.Bool("list", false, "list the available analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vet [-list] [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "vet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
