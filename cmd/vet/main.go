// Command vet runs the repository's custom static analyzers over Go
// packages:
//
//	go run ./cmd/vet ./...
//	go run ./cmd/vet -list
//	go run ./cmd/vet -only mapiter ./internal/automata
//
// The eight analyzers (see internal/analysis) guard invariants the
// automata pipeline and the serving engine depend on: mapiter (no
// map-iteration order leaking into canonical output), ctxcheck
// (ctx-taking exponential entry points actually honor cancellation),
// invariantcall (exported constructors run the regexrwdebug validation
// hooks), budgetcheck (state-materializing loops charge the budget
// meter), spancheck (spans are closed on all return paths, contexts
// are threaded), planimmutable (cached Plans and memo tables are
// written only in their constructor file), locksafety (no mixed
// atomic/plain access, copied locks, or channel/charge ops under a
// mutex) and nodeprecated (internal/ and cmd/ avoid the Deprecated
// facade). The command exits 1 when any diagnostic is reported, so CI
// can gate on it, and 2 on driver errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"regexrw/internal/analysis"
)

func main() {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vet: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(wd, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver: it loads the packages named by args
// relative to dir, applies the selected analyzers, prints diagnostics
// to stdout, and returns the process exit code (0 clean, 1 findings,
// 2 usage or load errors).
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vet [-list] [-only names] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analysis.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "vet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load(dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
