// Package bad exercises the nodeprecated gate: an internal package
// calling the deprecated legacy surface.
package bad

import "vetfixture/legacy"

// Run calls the legacy entry point.
func Run() {
	legacy.Rewrite()
}
