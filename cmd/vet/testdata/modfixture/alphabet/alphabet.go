// Package alphabet is the modfixture double of the real alphabet
// package: just enough surface for the analyzers' type matching.
package alphabet

// Symbol identifies one alphabet symbol.
type Symbol int

// None marks the absence of a symbol.
const None Symbol = -1
