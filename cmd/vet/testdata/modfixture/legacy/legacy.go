// Package legacy holds the modfixture's deprecated API surface.
package legacy

// Rewrite is the old entry point.
//
// Deprecated: use RewriteContext.
func Rewrite() {}

// RewriteContext is the supported entry point.
func RewriteContext() {}
