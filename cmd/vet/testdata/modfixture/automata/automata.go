// Package automata is the modfixture double of the real automata
// package, seeded with one violation per automata-facing analyzer
// (mapiter, invariantcall, budgetcheck) plus one exempted loop proving
// directives suppress through the driver.
package automata

import "vetfixture/alphabet"

// State identifies a state.
type State int

// NFA is a minimal map-backed automaton.
type NFA struct {
	accept []bool
	trans  map[State]map[alphabet.Symbol][]State
}

// NewNFA returns an empty NFA. It deliberately skips the debug
// validation hook: the invariantcall violation.
func NewNFA() *NFA {
	return &NFA{trans: map[State]map[alphabet.Symbol][]State{}}
}

// AddState appends a fresh state.
func (n *NFA) AddState() State {
	n.accept = append(n.accept, false)
	return State(len(n.accept) - 1)
}

// Grow adds k states without charging any meter: the budgetcheck
// violation.
func Grow(n *NFA, k int) {
	for i := 0; i < k; i++ {
		n.AddState()
	}
}

// GrowExempt carries a justified exemption, so the driver must stay
// quiet about its loop.
func GrowExempt(n *NFA, k int) {
	for i := 0; i < k; i++ { //budget:exempt fixture loop bounded by the caller's k
		n.AddState()
	}
}

// Targets flattens a transition row by ranging over the symbol-keyed
// map: the mapiter violation.
func Targets(row map[alphabet.Symbol][]State) []State {
	var out []State
	for _, ts := range row {
		out = append(out, ts...)
	}
	return out
}
