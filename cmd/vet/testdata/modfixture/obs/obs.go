// Package obs is the modfixture double of the real obs package.
package obs

import "context"

// Span is one traced region.
type Span struct{}

// End closes the span.
func (s *Span) End() {}

// StartSpan opens a span below ctx.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
