package engine

import (
	"context"
	"sync"

	"vetfixture/obs"
)

// Cache pairs a mutex with its registry.
type Cache struct {
	mu   sync.Mutex
	size int
}

// Serve traces a request but leaks the span (spancheck) and stamps the
// cached plan after publish (planimmutable).
func Serve(ctx context.Context, p *Plan) {
	_, span := obs.StartSpan(ctx, "engine.serve")
	p.states++
	_ = span
}

// Wait spins on the plan without ever consulting its context: the
// ctxcheck violation.
func Wait(ctx context.Context, p *Plan) {
	for p.states == 0 {
	}
}

// Snapshot copies the cache — mutex included — by value: the
// locksafety violation.
func Snapshot(c Cache) int {
	return c.size
}
