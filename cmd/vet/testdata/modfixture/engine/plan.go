// Package engine is the modfixture double of the serving engine,
// seeded with one violation each for planimmutable, spancheck,
// ctxcheck and locksafety.
package engine

// Plan is the cached compile artifact; its fields may only be written
// here, in the declaring file.
type Plan struct {
	states int
}

// NewPlan constructs a Plan where its fields are allowed to be set.
func NewPlan(states int) *Plan {
	return &Plan{states: states}
}
