package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// modfixtureWants are the exact position-and-analyzer prefixes the
// quarantined fixture module must produce, in output order. The module
// under testdata/modfixture has its own go.mod (module vetfixture), so
// the repo's own vet run never sees it, and each of the eight analyzers
// fires exactly once at a pinned position.
var modfixtureWants = []string{
	"automata/automata.go:20:1: invariantcall: exported NewNFA returns *NFA without a debug validation call",
	"automata/automata.go:33:2: budgetcheck: loop materializes automaton state without charging the budget meter",
	"automata/automata.go:50:2: mapiter: range over map keyed by alphabet.Symbol iterates in random order",
	"engine/serve.go:19:13: spancheck: span \"span\" started by obs.StartSpan has no deferred End in this function",
	"engine/serve.go:20:2: planimmutable: write to engine.Plan field states outside its declaring file plan.go",
	"engine/serve.go:26:1: ctxcheck: Wait takes a context.Context but its loops never consult it",
	"engine/serve.go:33:15: locksafety: parameter passes Cache by value, copying the lock it contains",
	"internal/bad/bad.go:9:9: nodeprecated: use of deprecated legacy.Rewrite from vetfixture/internal/bad",
}

func modfixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "modfixture"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRunModfixture drives the full eight-analyzer suite over the
// fixture module and pins every diagnostic's file, line, column,
// analyzer and message head, plus the exit code.
func TestRunModfixture(t *testing.T) {
	dir := modfixtureDir(t)
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != len(modfixtureWants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(lines), len(modfixtureWants), stdout.String())
	}
	for i, want := range modfixtureWants {
		full := filepath.Join(dir, filepath.FromSlash(want))
		if !strings.HasPrefix(lines[i], full) {
			t.Errorf("diagnostic %d:\n got  %s\n want prefix %s", i, lines[i], full)
		}
	}
}

// TestRunOnly restricts the suite to one analyzer and expects exactly
// its finding.
func TestRunOnly(t *testing.T) {
	dir := modfixtureDir(t)
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-only", "planimmutable", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "planimmutable: write to engine.Plan field states") {
		t.Fatalf("-only planimmutable output:\n%s", stdout.String())
	}
}

// TestRunList checks -list names every registered analyzer and exits 0.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(modfixtureDir(t), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list = %d, want 0", code)
	}
	for _, name := range []string{"mapiter", "ctxcheck", "invariantcall", "budgetcheck", "spancheck", "planimmutable", "locksafety", "nodeprecated"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestRunUnknownAnalyzer checks the driver rejects a bad -only value
// with a usage error.
func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(modfixtureDir(t), []string{"-only", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("run -only nosuch = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

// TestRepoIsSelfClean runs the suite over the repository itself: the
// tree must stay free of findings (every known-good exception carries a
// justified directive).
func TestRepoIsSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repository; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run(root, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("repository is not vet-clean (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}
