// Command bench runs the reproducible benchmark pipeline over the
// paper's benchmark families and writes a machine-readable report.
//
//	go run ./cmd/bench -sizes tiny -out BENCH_pipeline.json
//	go run ./cmd/bench -sizes tiny -out BENCH_ci.json -check -against BENCH_pipeline.json
//
// -check enforces the in-run regression guard (optimized ≤ 2x its own
// baseline for EX2Pipeline and THM6Exactness; warm plan-cache hits
// ≥ 10x faster than cold compiles for PlanCache; the frontier-bitset
// evaluator and its incremental updates ≥ 5x faster than the map BFS
// and from-scratch baselines for GraphEval/GraphEvalIncr at 100k+
// edges; for the Strategy* families — StrategyEX2, StrategyTHM5,
// StrategyTHM6, each timing the adaptive dispatcher against every
// forced arm — the adaptive run ≥ 0.95x the better forced arm, the
// dense minimization kernel ≥ 1.5x over forced sparse on StrategyTHM5,
// and the EX2Pipeline speedup at GOMAXPROCS > 1 ≥ 0.95x); -against
// verifies the report's schema and coverage against a committed
// reference without comparing wall-clock numbers
// (docs/PERFORMANCE.md §5).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"regexrw/internal/bench"
	"regexrw/internal/cliobs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sizes := fs.String("sizes", "tiny", "size class: smoke, tiny or full")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	check := fs.Bool("check", false, "fail on an in-run >2x regression for EX2Pipeline/THM6Exactness")
	against := fs.String("against", "", "compare schema and coverage against this committed report")
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec, err := bench.Sizes(*sizes)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ctx, finishObs := obsFlags.Install(context.Background(), stderr)
	defer finishObs()
	rep, err := bench.Run(ctx, spec)
	if err != nil {
		fmt.Fprintln(stderr, "bench:", err)
		return 1
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "bench:", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "bench: wrote %s (%d entries, sizes=%s)\n", *out, len(rep.Entries), rep.Sizes)
	}

	for _, e := range rep.Entries {
		if e.PlanHitRate > 0 {
			fmt.Fprintf(stdout, "bench: %-14s param=%-3d %12.0f ns/op  vs %-12s %12.0f ns/op  speedup %.2fx  plan-hit-rate %.2f\n",
				e.Family, e.Param, e.NsOp, e.Baseline, e.BaselineNsOp, e.Speedup, e.PlanHitRate)
		} else if e.BaselineNsOp > 0 {
			fmt.Fprintf(stdout, "bench: %-14s param=%-3d %12.0f ns/op  vs %-12s %12.0f ns/op  speedup %.2fx  hit-rate %.2f\n",
				e.Family, e.Param, e.NsOp, e.Baseline, e.BaselineNsOp, e.Speedup, e.SubsetHitRate)
		} else {
			fmt.Fprintf(stdout, "bench: %-14s param=%-3d %12.0f ns/op  states %d  hit-rate %.2f\n",
				e.Family, e.Param, e.NsOp, e.States, e.SubsetHitRate)
		}
	}

	if *against != "" {
		refData, err := os.ReadFile(*against)
		if err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		var ref bench.Report
		if err := json.Unmarshal(refData, &ref); err != nil {
			fmt.Fprintf(stderr, "bench: parse %s: %v\n", *against, err)
			return 1
		}
		if err := bench.CompareSchema(&ref, rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "bench: schema and coverage match %s\n", *against)
	}

	if *check {
		if err := bench.Check(rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "bench: regression guard passed")
	}
	return 0
}
