package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the CLI end to end at the smoke size: write a
// report, then re-run against it with the schema compare and the
// regression guard enabled. This is the same invocation shape CI uses
// with -sizes tiny against the committed BENCH_pipeline.json.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke run in -short mode")
	}
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr strings.Builder
	if rc := run([]string{"-sizes", "smoke", "-out", out, "-check"}, &stdout, &stderr); rc != 0 {
		t.Fatalf("first run exited %d: %s", rc, stderr.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !strings.Contains(stdout.String(), "regression guard passed") {
		t.Fatalf("missing guard confirmation in output:\n%s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if rc := run([]string{"-sizes", "smoke", "-against", out}, &stdout, &stderr); rc != 0 {
		t.Fatalf("compare run exited %d: %s", rc, stderr.String())
	}
	if !strings.Contains(stdout.String(), "schema and coverage match") {
		t.Fatalf("missing schema confirmation in output:\n%s", stdout.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if rc := run([]string{"-no-such-flag"}, &stdout, &stderr); rc != 2 {
		t.Fatalf("unknown flag: got exit %d, want 2", rc)
	}
	if rc := run([]string{"-sizes", "galactic"}, &stdout, &stderr); rc != 2 {
		t.Fatalf("unknown size class: got exit %d, want 2", rc)
	}
	if rc := run([]string{"-sizes", "smoke", "-against", "/nonexistent/ref.json"}, &stdout, &stderr); rc != 1 {
		t.Fatalf("missing reference: got exit %d, want 1", rc)
	}
}
