package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTracecheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(good, []byte(`{"name":"run","states":3,"children":[{"name":"automata.determinize","states":3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(`{"name":"","states":3}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-summary", good}, &out, &errOut); code != 0 {
		t.Fatalf("valid trace exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "2 spans, 6 states") {
		t.Fatalf("summary output = %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{good, bad}, &out, &errOut); code != 1 {
		t.Fatalf("invalid trace exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "empty name") {
		t.Fatalf("stderr = %q, want empty-name diagnostic", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{filepath.Join(dir, "missing.json")}, &out, &errOut); code != 1 {
		t.Fatalf("missing file exit %d, want 1", code)
	}
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
}
