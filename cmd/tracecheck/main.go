// Command tracecheck validates trace JSON files produced by the
// -trace flag of the pipeline CLIs against the schema of
// docs/OBSERVABILITY.md: one root span object, non-empty span names,
// non-negative counters and clock fields, no unknown fields. CI runs it
// over the sample trace each build uploads.
//
// Usage:
//
//	tracecheck out.json [more.json ...]
//
// Exits 0 when every file validates, 1 when any fails (with a
// diagnostic naming the file and the offending span), 2 on usage
// errors. With -summary, prints per-file span counts and state totals.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"regexrw/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	summary := fs.Bool("summary", false, "print span count and resource totals per validated file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "tracecheck: no trace files given")
		fs.Usage()
		return 2
	}
	code := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "tracecheck:", err)
			code = 1
			continue
		}
		root, err := obs.ParseTrace(data)
		if err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		if *summary {
			var spans, states, transitions int64
			obs.WalkTrace(root, func(s *obs.SpanJSON) {
				spans++
				states += s.States
				transitions += s.Transitions
			})
			fmt.Fprintf(stdout, "%s: ok (%d spans, %d states, %d transitions)\n",
				path, spans, states, transitions)
		} else {
			fmt.Fprintf(stdout, "%s: ok\n", path)
		}
	}
	return code
}
