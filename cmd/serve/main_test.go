package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"regexrw/internal/engine"
	"regexrw/internal/obs"
	"regexrw/internal/workload"
)

func testServer(t *testing.T, opts ...engine.Option) (*httptest.Server, *engine.Engine) {
	t.Helper()
	opts = append([]engine.Option{engine.WithMetrics(obs.NewRegistry())}, opts...)
	eng := engine.New(opts...)
	ts := httptest.NewServer(newServer(eng, nil, nil))
	t.Cleanup(ts.Close)
	return ts, eng
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return v
}

type errorEnvelope struct {
	Error errorJSON `json:"error"`
}

func TestServeRewriteRoundTrip(t *testing.T) {
	ts, eng := testServer(t)
	req := rewriteRequest{
		Query: "a·(b·a+c)*",
		Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
	}
	resp, raw := post(t, ts.URL+"/v1/rewrite", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	got := decode[planResponse](t, raw)
	if got.Rewriting != "e2*·e1·e3*" {
		t.Fatalf("rewriting = %q", got.Rewriting)
	}
	if !got.Exact || got.Verdict != "yes" {
		t.Fatalf("exactness = %v/%s", got.Exact, got.Verdict)
	}
	if got.Empty || got.SigmaEmpty {
		t.Fatal("the Example 2 rewriting is nonempty")
	}
	if got.States <= 0 {
		t.Fatalf("states = %d", got.States)
	}

	// The same problem, spelled differently, is a warm hit on the same
	// plan key.
	resp2, raw2 := post(t, ts.URL+"/v1/rewrite", rewriteRequest{
		Query: "a ( b a + c )*",
		Views: map[string]string{"e1": "a", "e2": "a . c* . b", "e3": "c"},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, raw2)
	}
	if got2 := decode[planResponse](t, raw2); got2.Key != got.Key {
		t.Fatalf("respelled request got key %s, want %s", got2.Key, got.Key)
	}
	if s := eng.Stats(); s.Hits != 1 || s.Compiles != 1 {
		t.Fatalf("stats = %+v, want 1 hit and 1 compile", s)
	}

	// The health endpoint reflects the same counters.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
	health := decode[healthResponse](t, hraw)
	if health.Status != "ok" || health.Stats.Requests != 2 {
		t.Fatalf("health = %+v", health)
	}
}

func TestServeMetricsScrape(t *testing.T) {
	ts, _ := testServer(t)
	post(t, ts.URL+"/v1/rewrite", rewriteRequest{
		Query: "a·a", Views: map[string]string{"e1": "a"},
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"regexrw_engine_requests 1",
		"regexrw_engine_compiles 1",
		"regexrw_cache_plan_misses 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics scrape missing %q:\n%s", want, body)
		}
	}
}

func TestServeBudgetExceeded(t *testing.T) {
	ts, _ := testServer(t)
	inst := workload.DetBlowupFamily(10)
	views := map[string]string{}
	for _, v := range inst.Views {
		views[v.Name] = v.Expr.String()
	}
	resp, raw := post(t, ts.URL+"/v1/rewrite", rewriteRequest{
		Query:     inst.Query.String(),
		Views:     views,
		MaxStates: 50,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, raw)
	}
	e := decode[errorEnvelope](t, raw).Error
	if e.Code != "budget_exceeded" {
		t.Fatalf("code = %q: %s", e.Code, raw)
	}
	if e.Stage == "" || e.Limit != 50 {
		t.Fatalf("budget diagnostics missing: %+v", e)
	}
}

func TestServeBadRequests(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		name string
		path string
		body string
	}{
		{"malformed json", "/v1/rewrite", `{"query":`},
		{"unknown field", "/v1/rewrite", `{"quarry":"a"}`},
		{"bad regex", "/v1/rewrite", `{"query":"a·(","views":{"e1":"a"}}`},
		{"bad method", "/v1/rpq", `{"query":"f","formulas":{"f":"=a"},"method":"sideways"}`},
		{"bad formula", "/v1/rpq", `{"query":"f","formulas":{"f":"&&"}}`},
	}
	for _, tc := range cases {
		resp, raw := postRaw(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, raw)
			continue
		}
		if e := decode[errorEnvelope](t, raw).Error; e.Code != "bad_request" {
			t.Errorf("%s: code %q", tc.name, e.Code)
		}
	}
}

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func TestServeRPQRoundTrip(t *testing.T) {
	ts, _ := testServer(t)
	req := rpqRequest{
		Query:    "fa·(fb+fc)",
		Formulas: map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"},
		Views: []rpqViewJSON{
			{Name: "q1", Query: "fa"},
			{Name: "q2", Query: "fb"},
			{Name: "q3", Query: "fc"},
		},
		Theory: &theoryJSON{Constants: []string{"a", "b", "c"}},
	}
	resp, raw := post(t, ts.URL+"/v1/rpq", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	got := decode[planResponse](t, raw)
	if !got.Exact {
		t.Fatalf("expected an exact RPQ rewriting: %s", raw)
	}

	// Same problem with views and theory permuted: same key.
	req2 := req
	req2.Views = []rpqViewJSON{
		{Name: "q3", Query: "fc"},
		{Name: "q1", Query: "fa"},
		{Name: "q2", Query: "fb"},
	}
	req2.Theory = &theoryJSON{Constants: []string{"c", "b", "a"}}
	_, raw2 := post(t, ts.URL+"/v1/rpq", req2)
	if got2 := decode[planResponse](t, raw2); got2.Key != got.Key {
		t.Fatalf("permuted RPQ request got key %s, want %s", got2.Key, got.Key)
	}
}

func TestServeTraceExport(t *testing.T) {
	ts, _ := testServer(t)
	resp, raw := post(t, ts.URL+"/v1/rewrite", rewriteRequest{
		Query: "a·a", Views: map[string]string{"e1": "a"}, Trace: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	got := decode[planResponse](t, raw)
	if got.Trace == nil {
		t.Fatal("expected a trace in the response")
	}
	var found bool
	var walk func(s *obs.SpanJSON)
	walk = func(s *obs.SpanJSON) {
		if s.Name == "engine.compile" {
			found = true
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(got.Trace)
	if !found {
		t.Fatalf("trace has no engine.compile span: %s", raw)
	}
	// A warm repeat still traces the request, without a compile span.
	_, raw2 := post(t, ts.URL+"/v1/rewrite", rewriteRequest{
		Query: "a·a", Views: map[string]string{"e1": "a"}, Trace: true,
	})
	got2 := decode[planResponse](t, raw2)
	if got2.Trace == nil {
		t.Fatal("expected a trace on the warm request too")
	}
}

func TestServeClosedEngine(t *testing.T) {
	ts, eng := testServer(t)
	eng.Close()
	resp, raw := post(t, ts.URL+"/v1/rewrite", rewriteRequest{
		Query: "a", Views: map[string]string{"e1": "a"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
	}
	if e := decode[errorEnvelope](t, raw).Error; e.Code != "closed" {
		t.Fatalf("code = %q", e.Code)
	}
}

// TestServeRunSmoke drives the real binary path: flags, listener,
// serving, graceful SIGTERM shutdown.
func TestServeRunSmoke(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errb bytes.Buffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-max-states", "100000", "-timeout", "30s"}, &out, &errb, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, raw := post(t, fmt.Sprintf("http://%s/v1/rewrite", addr), rewriteRequest{
		Query: "a·(b·a+c)*",
		Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	mresp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mraw), "regexrw_engine_requests") {
		t.Fatalf("metrics scrape missing engine counters:\n%s", mraw)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
}
