package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestHelperServeProcess is not a test: re-executed by the crash tests
// as a real server subprocess so it can be SIGKILLed mid-run.
func TestHelperServeProcess(t *testing.T) {
	if os.Getenv("GO_SERVE_HELPER") != "1" {
		t.Skip("helper process")
	}
	os.Exit(run(strings.Split(os.Getenv("SERVE_HELPER_ARGS"), "\x1f"), os.Stdout, os.Stderr, nil))
}

// serveProc is one helper-process server instance.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
	out  *bytes.Buffer
}

func startServeProc(t *testing.T, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperServeProcess")
	cmd.Env = append(os.Environ(),
		"GO_SERVE_HELPER=1",
		"SERVE_HELPER_ARGS="+strings.Join(append([]string{"-addr", "127.0.0.1:0"}, args...), "\x1f"),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, out: &buf}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	// The server prints "serve: listening on <addr>" once the listener
	// is up; everything after that line is drained in the background.
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "serve: listening on "); ok {
			p.addr = addr
			go io.Copy(io.Discard, stdout)
			return p
		}
	}
	t.Fatalf("server never announced its address; stderr: %s", buf.String())
	return nil
}

func (p *serveProc) url(path string) string { return fmt.Sprintf("http://%s%s", p.addr, path) }

// kill9 delivers an un-catchable SIGKILL — the crash the temp-file +
// fsync + rename protocol must survive.
func (p *serveProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

func waitReady(t *testing.T, p *serveProc) readyResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url("/readyz"))
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				var rr readyResponse
				if err := json.Unmarshal(raw, &rr); err != nil {
					t.Fatalf("readyz body: %v: %s", err, raw)
				}
				return rr
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server never became ready")
	return readyResponse{}
}

// healthStats decodes GET /healthz's engine counter snapshot.
func healthStats(t *testing.T, p *serveProc) map[string]any {
	t.Helper()
	resp, err := http.Get(p.url("/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Stats map[string]any `json:"Stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Stats
}

func statInt(t *testing.T, stats map[string]any, field string) int64 {
	t.Helper()
	v, ok := stats[field].(float64)
	if !ok {
		t.Fatalf("stats field %s missing: %v", field, stats)
	}
	return int64(v)
}

func planFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "plans", "*", "*.plan"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestServeCrashRestart is the end-to-end crash-safety contract:
// populate the plan directory through /v1/rewrite, SIGKILL the server,
// restart over the same directory, and the identical request is served
// from disk with zero compiles; then corrupt the entry on disk and a
// third boot quarantines it and transparently recompiles.
func TestServeCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	reqBody := `{"query":"a·(b·a+c)*","views":{"e1":"a","e2":"a·c*·b","e3":"c"}}`
	post := func(p *serveProc) string {
		resp, err := http.Post(p.url("/v1/rewrite"), "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rewrite: %d: %s", resp.StatusCode, raw)
		}
		var pr struct {
			Rewriting string `json:"rewriting"`
		}
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		return pr.Rewriting
	}

	// Boot 1: compile, wait for the write-behind save to land, crash.
	p1 := startServeProc(t, "-plan-dir", dir)
	waitReady(t, p1)
	want := post(p1)
	deadline := time.Now().Add(15 * time.Second)
	for len(planFiles(t, dir)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("write-behind save never reached the plan directory")
		}
		time.Sleep(10 * time.Millisecond)
	}
	p1.kill9(t)

	// Boot 2: warm start restores the plan; the request recompiles
	// nothing.
	p2 := startServeProc(t, "-plan-dir", dir)
	if rr := waitReady(t, p2); rr.Restored != 1 {
		t.Fatalf("warm start restored %d plans, want 1", rr.Restored)
	}
	if got := post(p2); got != want {
		t.Fatalf("restored rewriting %q != original %q", got, want)
	}
	stats := healthStats(t, p2)
	if n := statInt(t, stats, "Compiles"); n != 0 {
		t.Fatalf("restarted server compiled %d times, want 0", n)
	}
	if n := statInt(t, stats, "StoreLoads"); n != 1 {
		t.Fatalf("StoreLoads = %d, want 1", n)
	}
	store, ok := stats["Store"].(map[string]any)
	if !ok || store["hits"].(float64) < 1 {
		t.Fatalf("plan_store hits missing from stats: %v", stats)
	}
	p2.kill9(t)

	// Corrupt the entry on disk; boot 3 must quarantine and recompile,
	// never serve the poisoned bytes.
	files := planFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("plan files: %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	p3 := startServeProc(t, "-plan-dir", dir)
	if rr := waitReady(t, p3); rr.Restored != 0 {
		t.Fatalf("corrupt entry restored: %+v", rr)
	}
	if got := post(p3); got != want {
		t.Fatalf("recompiled rewriting %q != original %q", got, want)
	}
	stats = healthStats(t, p3)
	if n := statInt(t, stats, "Compiles"); n != 1 {
		t.Fatalf("corrupt entry should recompile exactly once, got %d", n)
	}
	store = stats["Store"].(map[string]any)
	if store["corrupt"].(float64) != 1 || store["quarantined"].(float64) != 1 {
		t.Fatalf("corruption not quarantined: %v", store)
	}
	q, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir: %v, %v", q, err)
	}
}

// TestServeManifestWarmup: a workload manifest precompiles at boot and
// /readyz reports the progress totals.
func TestServeManifestWarmup(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	manifest := filepath.Join(dir, "workload.json")
	if err := os.WriteFile(manifest, []byte(`{
		"rewrites": [
			{"query": "a·(b·a+c)*", "views": {"e1": "a", "e2": "a·c*·b", "e3": "c"}},
			{"query": "a·a", "views": {"e1": "a"}}
		],
		"rpqs": [
			{"query": "p*", "formulas": {"p": "city"},
			 "views": [{"name": "v1", "query": "p·p*"}],
			 "theory": {"constants": ["a"], "predicates": {"city": ["a"]}}}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p := startServeProc(t, "-plan-dir", filepath.Join(dir, "store"), "-manifest", manifest)
	rr := waitReady(t, p)
	if rr.Manifest != 3 || rr.Precompiled != 3 || rr.Failed != 0 {
		t.Fatalf("warm-up progress: %+v", rr)
	}
	// Every manifest entry is now an in-memory hit.
	stats := healthStats(t, p)
	if n := statInt(t, stats, "Compiles"); n != 3 {
		t.Fatalf("manifest should have compiled 3 plans, got %d", n)
	}
	resp, err := http.Post(p.url("/v1/rewrite"), "application/json",
		strings.NewReader(`{"query":"a·a","views":{"e1":"a"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n := statInt(t, healthStats(t, p), "Hits"); n != 1 {
		t.Fatalf("manifest-covered request should be a cache hit, hits = %d", n)
	}
}

// TestServeBadManifest: a malformed manifest is a boot-time usage
// error, not a half-warmed server.
func TestServeBadManifest(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(manifest, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-manifest", manifest}, &out, &errb, nil); code != 2 {
		t.Fatalf("run with bad manifest exited %d, want 2; stderr: %s", code, errb.String())
	}
}

// TestServeUnreadableStoreDir: a plan directory that cannot be created
// degrades to a memory-only server that still serves 200s.
func TestServeUnreadableStoreDir(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errb bytes.Buffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-plan-dir", blocker}, &out, &errb, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/rewrite", addr), "application/json",
		strings.NewReader(`{"query":"a·a","views":{"e1":"a"}}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded server answered %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(errb.String(), "plan store disabled") {
		t.Fatalf("degradation not logged: %s", errb.String())
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d\nstderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
}
