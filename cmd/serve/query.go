package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	regexrwclient "regexrw/client"
	"regexrw/internal/engine"
	"regexrw/internal/graph"
	"regexrw/internal/workload"
)

// graphSet is the server's registry of named databases: populated at
// boot from repeatable -graph name=spec flags and at runtime via
// POST /v1/graphs. Registered databases are immutable — a re-register
// replaces the entry wholesale, it never mutates a served graph (the
// engine's evaluator cache keys on the *graph.DB identity, so a
// replaced graph gets fresh evaluators).
type graphSet struct {
	mu     sync.RWMutex
	graphs map[string]*graph.DB
}

func newGraphSet() *graphSet { return &graphSet{graphs: make(map[string]*graph.DB)} }

func (g *graphSet) add(name string, db *graph.DB) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.graphs[name] = db
}

func (g *graphSet) get(name string) (*graph.DB, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	db, ok := g.graphs[name]
	return db, ok
}

// graphInfo is one registry entry in GET /v1/graphs.
type graphInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

func (g *graphSet) list() []graphInfo {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]graphInfo, 0, len(g.graphs))
	//mapiter:unordered sorted by name below
	for name, db := range g.graphs {
		out = append(out, graphInfo{Name: name, Nodes: db.NumNodes(), Edges: db.NumEdges()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// loadGraph resolves one -graph spec: a generator spec understood by
// internal/workload ("grid:WxH", "chain:N", "powerlaw:N:E:SEED",
// "random:N:E:SEED") or a path to a file in the graph text codec.
func loadGraph(spec string) (*graph.DB, error) {
	if workload.IsGraphSpec(spec) {
		return workload.ParseGraphSpec(spec)
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f, nil)
}

// graphFlags is the repeatable -graph name=spec flag.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }

func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

// registerGraphFlags loads each name=spec pair into the registry.
func registerGraphFlags(gs *graphSet, flags []string) error {
	for _, f := range flags {
		name, spec, ok := strings.Cut(f, "=")
		if !ok || name == "" {
			return fmt.Errorf("-graph %q: want name=spec", f)
		}
		db, err := loadGraph(spec)
		if err != nil {
			return fmt.Errorf("-graph %s: %w", name, err)
		}
		gs.add(name, db)
	}
	return nil
}

// registerGraphRequest is the body of POST /v1/graphs: a generator
// spec, a server-side file path, or the graph itself in the text
// codec.
type registerGraphRequest struct {
	Name string `json:"name"`
	// Spec is a workload generator spec ("grid:100x100",
	// "powerlaw:1000:10000:7", …) or a server-side file path.
	Spec string `json:"spec,omitempty"`
	// Text is the database in the graph text codec ("from label to"
	// lines), for clients shipping their own data.
	Text string `json:"text,omitempty"`
}

func (s *server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var req registerGraphRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: "graph name required"})
		return
	}
	var db *graph.DB
	var err error
	switch {
	case req.Spec != "" && req.Text != "":
		err = fmt.Errorf("give spec or text, not both")
	case req.Spec != "":
		db, err = loadGraph(req.Spec)
	case req.Text != "":
		db, err = graph.Read(strings.NewReader(req.Text), nil)
	default:
		err = fmt.Errorf("graph spec or text required")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	s.graphs.add(req.Name, db)
	writeJSON(w, http.StatusOK, graphInfo{Name: req.Name, Nodes: db.NumNodes(), Edges: db.NumEdges()})
}

func (s *server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Graphs []graphInfo `json:"graphs"`
	}{s.graphs.list()})
}

// The /v1/query wire schema is defined in the regexrwclient package
// and aliased here; see client/wire.go for the documented definitions.
type (
	queryRequest    = regexrwclient.QueryRequest
	queryHeader     = regexrwclient.QueryHeader
	queryAnswerLine = regexrwclient.QueryAnswer
	queryTrailer    = regexrwclient.QueryTrailer
	queryErrorLine  = regexrwclient.QueryErrorLine
)

// handleQuery answers a registered graph with NDJSON streaming: one
// header line, one line per answer pair as discovered, one trailer.
// Errors before the first byte use the standard envelope with the
// taxonomy's status codes; errors after streaming started become a
// final "error" line (the status is already committed).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	db, ok := s.graphs.get(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, errorJSON{
			Code:    "unknown_graph",
			Message: fmt.Sprintf("graph %q not registered (use -graph or POST /v1/graphs)", req.Graph),
		})
		return
	}
	var mode engine.QueryMode
	switch req.Mode {
	case "", "rewriting":
		mode = engine.ModeRewriting
	case "query":
		mode = engine.ModeQuery
	default:
		writeError(w, http.StatusBadRequest, errorJSON{
			Code: "bad_request", Message: fmt.Sprintf("unknown mode %q (want rewriting or query)", req.Mode),
		})
		return
	}
	ereq := engine.QueryRequest{
		Request: engine.Request{
			Query:          req.Query,
			Views:          req.Views,
			MaxStates:      req.MaxStates,
			MaxTransitions: req.MaxTransitions,
			Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
		},
		Graph:      db,
		Mode:       mode,
		Source:     req.Source,
		Target:     req.Target,
		MaxAnswers: req.MaxAnswers,
	}

	// Compile (or fetch) the plan before committing the stream so
	// compile-time failures map onto the taxonomy's status codes; the
	// evaluation below re-fetches it from the cache.
	degraded := routeDegraded(r.Context())
	ctx, span := routeSpan(r.Context())
	plan, err := s.eng.Rewrite(ctx, ereq.Request)
	if err != nil {
		span.End()
		writeEngineErrorDegraded(w, err, degraded)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	_ = enc.Encode(queryHeader{
		Type: "header", Key: string(plan.Key()), Rewriting: plan.Regex().String(),
		Exact: plan.IsExact(), Mode: string(mode), Graph: req.Graph,
		Nodes: db.NumNodes(), Edges: db.NumEdges(), Degraded: degraded,
	})
	if flusher != nil {
		flusher.Flush()
	}

	answers := 0
	res, err := s.eng.QueryFunc(ctx, ereq, func(a engine.QueryAnswer) error {
		answers++
		if err := enc.Encode(queryAnswerLine{Type: "answer", From: a.From, To: a.To}); err != nil {
			return err
		}
		if flusher != nil && answers%1024 == 0 {
			flusher.Flush()
		}
		return nil
	})
	span.End()
	if err != nil {
		status, ej := engineError(err)
		_ = status // committed: the envelope travels as an NDJSON line
		ej.Degraded = degraded
		_ = enc.Encode(queryErrorLine{Type: "error", Error: ej})
		return
	}
	trailer := queryTrailer{Type: "trailer", Answers: answers, Truncated: res.Truncated}
	if res.Boolean {
		trailer.Matched = &res.Matched
	}
	_ = enc.Encode(trailer)
}
