package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"regexrw/internal/core"
	"regexrw/internal/engine"
)

// readiness tracks boot-time warm-up for GET /readyz. Liveness
// (/healthz) is unconditional — a warming process is alive; readiness
// flips only once the plan store has been loaded and the workload
// manifest precompiled, so a rolling deploy does not route traffic to
// an instance that would cold-compile its entire working set.
type readiness struct {
	ready       atomic.Bool
	restored    atomic.Int64 // plans loaded from the store at boot
	manifest    atomic.Int64 // manifest entries to precompile
	precompiled atomic.Int64 // manifest entries compiled (or already cached)
	failed      atomic.Int64 // manifest entries that exhausted their retries
}

// readyResponse is GET /readyz.
type readyResponse struct {
	Status      string `json:"status"` // "ready" or "warming"
	Restored    int64  `json:"restored"`
	Manifest    int64  `json:"manifest"`
	Precompiled int64  `json:"precompiled"`
	Failed      int64  `json:"failed"`
}

func (rd *readiness) response() readyResponse {
	status := "warming"
	if rd.ready.Load() {
		status = "ready"
	}
	return readyResponse{
		Status:      status,
		Restored:    rd.restored.Load(),
		Manifest:    rd.manifest.Load(),
		Precompiled: rd.precompiled.Load(),
		Failed:      rd.failed.Load(),
	}
}

// manifestFile is the workload manifest precompiled at boot: the same
// request schemas as POST /v1/rewrite and /v1/rpq, minus the
// per-request trace flag (ignored here).
type manifestFile struct {
	Rewrites []rewriteRequest `json:"rewrites,omitempty"`
	RPQs     []rpqRequest     `json:"rpqs,omitempty"`
}

func loadManifest(path string) (*manifestFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifestFile
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return &m, nil
}

// warmupRetries/warmupBaseBackoff bound the per-entry retry loop:
// attempt n sleeps base·2ⁿ plus up to 50% jitter, so a fleet restarting
// together does not hammer a recovering dependency in lockstep.
const (
	warmupRetries     = 3
	warmupBaseBackoff = 100 * time.Millisecond
)

// warmup restores the plan store into the in-memory cache and
// precompiles the manifest, then flips readiness. Manifest entries that
// were just restored from disk are cache hits here — precompilation
// only pays for keys the store did not cover. Warm-up is strictly
// best-effort: every failure is logged and counted, none is fatal; the
// server serves (and /readyz reports the failures) regardless.
func warmup(ctx context.Context, eng *engine.Engine, rd *readiness, m *manifestFile, logw io.Writer) {
	defer rd.ready.Store(true)

	n, err := eng.WarmStart(ctx)
	rd.restored.Store(int64(n))
	if err != nil {
		fmt.Fprintf(logw, "serve: warm start: %v (continuing with %d plans)\n", err, n)
	} else if n > 0 {
		fmt.Fprintf(logw, "serve: warm start restored %d plans\n", n)
	}
	if m == nil {
		return
	}
	rd.manifest.Store(int64(len(m.Rewrites) + len(m.RPQs)))
	for i, req := range m.Rewrites {
		inst, err := core.ParseInstance(req.Query, req.Views)
		if err != nil {
			rd.failed.Add(1)
			fmt.Fprintf(logw, "serve: manifest rewrite %d: %v\n", i, err)
			continue
		}
		rd.precompileOne(ctx, logw, fmt.Sprintf("rewrite %d", i), func(ctx context.Context) error {
			_, err := eng.Rewrite(ctx, engine.Request{
				Instance: inst, Partial: req.Partial,
				MaxStates: req.MaxStates, MaxTransitions: req.MaxTransitions,
				Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
			})
			return err
		})
	}
	for i, req := range m.RPQs {
		ereq, err := buildRPQ(req)
		if err != nil {
			rd.failed.Add(1)
			fmt.Fprintf(logw, "serve: manifest rpq %d: %v\n", i, err)
			continue
		}
		rd.precompileOne(ctx, logw, fmt.Sprintf("rpq %d", i), func(ctx context.Context) error {
			_, err := eng.RewriteRPQ(ctx, ereq)
			return err
		})
	}
}

// precompileOne runs one manifest compile with bounded retries and
// exponential backoff plus jitter.
func (rd *readiness) precompileOne(ctx context.Context, logw io.Writer, label string, compile func(context.Context) error) {
	var err error
	for attempt := 0; attempt < warmupRetries; attempt++ {
		if attempt > 0 {
			backoff := warmupBaseBackoff << uint(attempt-1)
			backoff += time.Duration(rand.Int63n(int64(backoff)/2 + 1))
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				rd.failed.Add(1)
				return
			}
		}
		if err = compile(ctx); err == nil {
			rd.precompiled.Add(1)
			return
		}
		if ctx.Err() != nil {
			break // shutting down: no further attempts
		}
	}
	rd.failed.Add(1)
	fmt.Fprintf(logw, "serve: manifest %s failed after %d attempts: %v\n", label, warmupRetries, err)
}
