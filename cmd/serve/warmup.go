package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"regexrw/internal/core"
	"regexrw/internal/engine"
	"regexrw/internal/obs"
)

// readiness tracks boot-time warm-up for GET /readyz. Liveness
// (/healthz) is unconditional — a warming process is alive; readiness
// flips only once the plan store has been loaded and the workload
// manifest precompiled, so a rolling deploy does not route traffic to
// an instance that would cold-compile its entire working set.
type readiness struct {
	ready          atomic.Bool
	restored       atomic.Int64 // plans loaded from the store at boot
	manifest       atomic.Int64 // manifest entries to precompile
	precompiled    atomic.Int64 // manifest entries compiled (or already cached)
	skipped        atomic.Int64 // manifest entries owned by another replica
	failed         atomic.Int64 // manifest entries that exhausted their retries
	failedAttempts atomic.Int64 // individual failed attempts, across retries
	lastFailure    atomic.Pointer[string]

	// reg, when non-nil, receives the serve.warmup.failed counter (one
	// increment per failed precompile attempt, not per exhausted entry
	// — an operator watching the counter sees the retries churning, not
	// just the final verdict).
	reg *obs.Registry
}

// readyResponse is GET /readyz.
type readyResponse struct {
	Status      string `json:"status"` // "ready" or "warming"
	Restored    int64  `json:"restored"`
	Manifest    int64  `json:"manifest"`
	Precompiled int64  `json:"precompiled"`
	// Skipped counts manifest entries this replica did not precompile
	// because the cluster ring places their keys on another replica.
	Skipped int64 `json:"skipped,omitempty"`
	Failed  int64 `json:"failed"`
	// FailedAttempts is cumulative across retries: an entry that
	// succeeded on its third attempt still contributed two here.
	FailedAttempts int64 `json:"failed_attempts,omitempty"`
	// LastFailure is the most recent precompile failure, for operators
	// reading /readyz instead of the log.
	LastFailure string `json:"last_failure,omitempty"`
	// Cluster is the ring view when the replica runs in cluster mode.
	Cluster *clusterStatusJSON `json:"cluster,omitempty"`
}

func (rd *readiness) response() readyResponse {
	status := "warming"
	if rd.ready.Load() {
		status = "ready"
	}
	resp := readyResponse{
		Status:         status,
		Restored:       rd.restored.Load(),
		Manifest:       rd.manifest.Load(),
		Precompiled:    rd.precompiled.Load(),
		Skipped:        rd.skipped.Load(),
		Failed:         rd.failed.Load(),
		FailedAttempts: rd.failedAttempts.Load(),
	}
	if msg := rd.lastFailure.Load(); msg != nil {
		resp.LastFailure = *msg
	}
	return resp
}

// noteFailure records one failed precompile attempt: the cumulative
// counter and last-failure message on /readyz, and the
// serve.warmup.failed metric.
func (rd *readiness) noteFailure(label string, err error) {
	rd.failedAttempts.Add(1)
	msg := fmt.Sprintf("%s: %v", label, err)
	rd.lastFailure.Store(&msg)
	rd.reg.Counter("serve.warmup.failed").Add(1)
}

// manifestFile is the workload manifest precompiled at boot: the same
// request schemas as POST /v1/rewrite and /v1/rpq, minus the
// per-request trace flag (ignored here).
type manifestFile struct {
	Rewrites []rewriteRequest `json:"rewrites,omitempty"`
	RPQs     []rpqRequest     `json:"rpqs,omitempty"`
}

func loadManifest(path string) (*manifestFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifestFile
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return &m, nil
}

// warmupRetries/warmupBaseBackoff bound the per-entry retry loop:
// attempt n sleeps base·2ⁿ plus up to 50% jitter, so a fleet restarting
// together does not hammer a recovering dependency in lockstep.
const (
	warmupRetries     = 3
	warmupBaseBackoff = 100 * time.Millisecond
)

// warmup restores the plan store into the in-memory cache and
// precompiles the manifest, then flips readiness. Manifest entries that
// were just restored from disk are cache hits here — precompilation
// only pays for keys the store did not cover. Warm-up is strictly
// best-effort: every failure is logged and counted, none is fatal; the
// server serves (and /readyz reports the failures) regardless.
func warmup(ctx context.Context, eng *engine.Engine, rd *readiness, m *manifestFile, logw io.Writer) {
	defer rd.ready.Store(true)

	n, err := eng.WarmStart(ctx)
	rd.restored.Store(int64(n))
	if err != nil {
		fmt.Fprintf(logw, "serve: warm start: %v (continuing with %d plans)\n", err, n)
	} else if n > 0 {
		fmt.Fprintf(logw, "serve: warm start restored %d plans\n", n)
	}
	if m == nil {
		return
	}
	rd.manifest.Store(int64(len(m.Rewrites) + len(m.RPQs)))
	for i, req := range m.Rewrites {
		label := fmt.Sprintf("rewrite %d", i)
		inst, err := core.ParseInstance(req.Query, req.Views)
		if err != nil {
			rd.failed.Add(1)
			rd.noteFailure(label, err)
			fmt.Fprintf(logw, "serve: manifest %s: %v\n", label, err)
			continue
		}
		// In cluster mode, only materialize owned keys: the manifest is
		// shared across the fleet and each replica precompiles its ~1/N
		// slice — the same filter WarmStart applies to the plan store.
		if !eng.Owns(engine.InstanceKey(inst, req.Partial)) {
			rd.skipped.Add(1)
			continue
		}
		rd.precompileOne(ctx, logw, label, func(ctx context.Context) error {
			_, err := eng.Rewrite(ctx, engine.Request{
				Instance: inst, Partial: req.Partial,
				MaxStates: req.MaxStates, MaxTransitions: req.MaxTransitions,
				Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
			})
			return err
		})
	}
	for i, req := range m.RPQs {
		label := fmt.Sprintf("rpq %d", i)
		ereq, err := buildRPQ(req)
		if err != nil {
			rd.failed.Add(1)
			rd.noteFailure(label, err)
			fmt.Fprintf(logw, "serve: manifest %s: %v\n", label, err)
			continue
		}
		if !eng.Owns(engine.RPQKey(ereq.Query, ereq.Views, ereq.Theory, ereq.Method)) {
			rd.skipped.Add(1)
			continue
		}
		rd.precompileOne(ctx, logw, label, func(ctx context.Context) error {
			_, err := eng.RewriteRPQ(ctx, ereq)
			return err
		})
	}
}

// precompileOne runs one manifest compile with bounded retries and
// exponential backoff plus jitter. Every failed attempt is logged and
// counted — not just the final verdict — so an entry that flaps across
// retries is visible on /readyz (failed_attempts, last_failure) and on
// the serve.warmup.failed counter while it is still being retried.
func (rd *readiness) precompileOne(ctx context.Context, logw io.Writer, label string, compile func(context.Context) error) {
	var err error
	for attempt := 0; attempt < warmupRetries; attempt++ {
		if attempt > 0 {
			backoff := warmupBaseBackoff << uint(attempt-1)
			backoff += time.Duration(rand.Int63n(int64(backoff)/2 + 1))
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				rd.failed.Add(1)
				return
			}
		}
		if err = compile(ctx); err == nil {
			rd.precompiled.Add(1)
			return
		}
		rd.noteFailure(label, err)
		fmt.Fprintf(logw, "serve: manifest %s attempt %d/%d: %v\n", label, attempt+1, warmupRetries, err)
		if ctx.Err() != nil {
			break // shutting down: no further attempts
		}
	}
	rd.failed.Add(1)
	fmt.Fprintf(logw, "serve: manifest %s failed after %d attempts: %v\n", label, warmupRetries, err)
}
