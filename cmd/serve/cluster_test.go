package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"regexrw/internal/cluster"
	"regexrw/internal/engine"
	"regexrw/internal/obs"
)

// testClusterReplica is one in-process replica of the harness cluster:
// a real listener (the address must exist before the ring does), its
// own engine and metrics registry, and the same router stack the
// binary runs.
type testClusterReplica struct {
	addr string
	eng  *engine.Engine
	reg  *obs.Registry
	cl   *clusterState
	srv  *http.Server
}

func (rep *testClusterReplica) url(path string) string { return "http://" + rep.addr + path }

func (rep *testClusterReplica) counter(name string) int64 {
	return rep.reg.Counter(name).Value()
}

// kill closes the replica's listener and server: subsequent dials get
// connection-refused, which is what a crashed replica looks like.
func (rep *testClusterReplica) kill() { _ = rep.srv.Close() }

// startTestCluster boots n replicas wired into one ring. Listeners are
// bound first so every replica (and the test) knows the full address
// list before any server starts.
func startTestCluster(t *testing.T, n int) []*testClusterReplica {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	peersCSV := strings.Join(addrs, ",")
	reps := make([]*testClusterReplica, n)
	for i := range reps {
		reg := obs.NewRegistry()
		cl, err := newClusterState(peersCSV, addrs[i], reg)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(
			engine.WithMetrics(reg),
			engine.WithOwnership(func(k engine.Key) bool { return cl.owns(string(k)) }),
		)
		srv := &http.Server{Handler: newRouter(cl, newServerWith(eng, nil, nil, cl))}
		go func() { _ = srv.Serve(lns[i]) }()
		reps[i] = &testClusterReplica{addr: addrs[i], eng: eng, reg: reg, cl: cl, srv: srv}
		t.Cleanup(func() { _ = srv.Close(); eng.Close() })
	}
	return reps
}

// clusterReq returns the i-th of a family of distinct rewrite
// requests: the query aⁱ⁺¹ over the single view v1 = a, whose maximal
// rewriting is v1ⁱ⁺¹. Distinct queries mean distinct plan keys, spread
// over the ring by SHA-256.
func clusterReq(i int) rewriteRequest {
	atoms := make([]string, i+1)
	for j := range atoms {
		atoms[j] = "a"
	}
	return rewriteRequest{
		Query: strings.Join(atoms, "·"),
		Views: map[string]string{"v1": "a"},
	}
}

// TestClusterPartitioning is the tentpole acceptance test: K distinct
// requests enter through one replica, every response is healthy and
// byte-identical to a single-node server's, and each plan key is
// compiled by exactly one replica — its ring owner — so the compile
// counts sum to K and match the ring's placement exactly.
func TestClusterPartitioning(t *testing.T) {
	reps := startTestCluster(t, 3)
	single, _ := testServer(t) // plain single-node server for the byte-identical baseline

	const K = 12
	wantCompiles := map[string]int64{} // owner address → keys it owns
	distinct := map[string]bool{}
	for i := 0; i < K; i++ {
		req := clusterReq(i)
		resp, raw := post(t, reps[0].url("/v1/rewrite"), req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, raw)
		}
		if resp.Header.Get(cluster.DegradedHeader) != "" {
			t.Fatalf("request %d: degraded in a healthy cluster", i)
		}
		_, sraw := post(t, single.URL+"/v1/rewrite", req)
		if string(raw) != string(sraw) {
			t.Fatalf("request %d: forwarded response differs from single-node:\ncluster: %s\nsingle:  %s", i, raw, sraw)
		}
		pr := decode[planResponse](t, raw)
		distinct[pr.Key] = true

		key, err := req.PlanKey()
		if err != nil {
			t.Fatal(err)
		}
		wantCompiles[reps[0].cl.ring.Owner(key)]++
	}
	if len(distinct) != K {
		t.Fatalf("%d distinct keys, want %d", len(distinct), K)
	}

	var sum int64
	for i, rep := range reps {
		got := rep.eng.Stats().Compiles
		sum += got
		if got != wantCompiles[rep.addr] {
			t.Errorf("replica %d compiled %d plans, ring assigns it %d", i, got, wantCompiles[rep.addr])
		}
	}
	if sum != K {
		t.Fatalf("compiles summed across replicas = %d, want %d (each key compiled exactly once)", sum, K)
	}

	// The entry replica forwarded exactly the keys it does not own.
	owned := wantCompiles[reps[0].addr]
	if got := reps[0].counter("cluster.local"); got != owned {
		t.Errorf("cluster.local = %d, want %d", got, owned)
	}
	if got := reps[0].counter("cluster.forwarded"); got != K-owned {
		t.Errorf("cluster.forwarded = %d, want %d", got, K-owned)
	}
	if got := reps[0].counter("cluster.degraded"); got != 0 {
		t.Errorf("cluster.degraded = %d in a healthy cluster", got)
	}
}

// TestClusterNotOwner: a request carrying the no-forward marker to a
// non-owner answers 421 with the versioned not_owner envelope naming
// the true owner — the redirect protocol cluster-aware clients use.
func TestClusterNotOwner(t *testing.T) {
	reps := startTestCluster(t, 3)
	// Find a request replica 0 does not own.
	var req rewriteRequest
	var owner string
	for i := 0; ; i++ {
		req = clusterReq(i)
		key, err := req.PlanKey()
		if err != nil {
			t.Fatal(err)
		}
		if owner = reps[0].cl.ring.Owner(key); owner != reps[0].addr {
			break
		}
	}
	body, _ := post(t, reps[0].url("/v1/rewrite"), req) // warm path sanity
	_ = body

	hreq, err := http.NewRequest(http.MethodPost, reps[0].url("/v1/rewrite"), strings.NewReader(
		fmt.Sprintf(`{"query":%q,"views":{"v1":"a"}}`, req.Query)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set(cluster.NoForwardHeader, "1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("status %d, want 421", resp.StatusCode)
	}
	var env errorEnvelope
	if err := decodeBody(resp, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "not_owner" || env.Error.Owner != owner {
		t.Fatalf("envelope = %+v, want not_owner naming %s", env.Error, owner)
	}
	if env.Error.V != 2 {
		t.Fatalf("envelope version = %d, want 2", env.Error.V)
	}
}

// TestClusterDegradation: with the owner dead, requests for its keys
// still answer 200 through any surviving replica — computed locally,
// marked degraded in header, body and counter. A dead peer never fails
// a request.
func TestClusterDegradation(t *testing.T) {
	reps := startTestCluster(t, 3)

	// Collect requests owned by replica 2, entering through replica 0.
	var victims []rewriteRequest
	for i := 0; len(victims) < 2 && i < 100; i++ {
		req := clusterReq(i)
		key, err := req.PlanKey()
		if err != nil {
			t.Fatal(err)
		}
		if reps[0].cl.ring.Owner(key) == reps[2].addr {
			victims = append(victims, req)
		}
	}
	if len(victims) < 2 {
		t.Fatal("no keys owned by replica 2 in the first 100 requests")
	}
	reps[2].kill()

	for i, req := range victims {
		resp, raw := post(t, reps[0].url("/v1/rewrite"), req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("victim %d: status %d, want degraded 200: %s", i, resp.StatusCode, raw)
		}
		if resp.Header.Get(cluster.DegradedHeader) == "" {
			t.Fatalf("victim %d: missing degraded header", i)
		}
		if pr := decode[planResponse](t, raw); !pr.Degraded {
			t.Fatalf("victim %d: response not marked degraded: %s", i, raw)
		}
	}
	if got := reps[0].counter("cluster.degraded"); got != int64(len(victims)) {
		t.Fatalf("cluster.degraded = %d, want %d", got, len(victims))
	}
	// The degraded compiles happened on the entry replica, against keys
	// it does not own.
	if got := reps[0].eng.Stats().Compiles; got != int64(len(victims)) {
		t.Fatalf("entry replica compiled %d plans, want %d", got, len(victims))
	}

	// Two consecutive transport failures opened the breaker (threshold
	// 3 with one retry per request = 4 failures): /readyz reports the
	// dead peer down.
	resp, err := http.Get(reps[0].url("/readyz"))
	if err != nil {
		t.Fatal(err)
	}
	var ready readyResponse
	if err := decodeBody(resp, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Cluster == nil || ready.Cluster.Self != reps[0].addr {
		t.Fatalf("readyz cluster block = %+v", ready.Cluster)
	}
	if len(ready.Cluster.Ring.Peers) != 3 {
		t.Fatalf("ring peers = %v", ready.Cluster.Ring.Peers)
	}
	found := false
	for _, d := range ready.Cluster.Down {
		if d == reps[2].addr {
			found = true
		}
	}
	if !found {
		t.Fatalf("readyz down = %v, want %s listed", ready.Cluster.Down, reps[2].addr)
	}
}

// TestClusterLoopPrevention: a request already at the forward-depth
// limit is served locally by a non-owner instead of being forwarded
// again — disagreeing ring views degrade, they never loop.
func TestClusterLoopPrevention(t *testing.T) {
	reps := startTestCluster(t, 2)
	var req rewriteRequest
	for i := 0; ; i++ {
		req = clusterReq(i)
		key, err := req.PlanKey()
		if err != nil {
			t.Fatal(err)
		}
		if reps[0].cl.ring.Owner(key) == reps[1].addr {
			break
		}
	}
	hreq, err := http.NewRequest(http.MethodPost, reps[0].url("/v1/rewrite"), strings.NewReader(
		fmt.Sprintf(`{"query":%q,"views":{"v1":"a"}}`, req.Query)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set(cluster.ForwardedHeader, "1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get(cluster.DegradedHeader) == "" {
		t.Fatal("depth-limited request must be marked degraded")
	}
	if reps[1].eng.Stats().Requests != 0 {
		t.Fatal("depth-limited request must not be forwarded onward")
	}
	if got := reps[0].counter("cluster.degraded"); got != 1 {
		t.Fatalf("cluster.degraded = %d, want 1", got)
	}
}

// TestClusterQueryForwarding: the NDJSON streaming endpoint routes by
// the same plan keys — a non-owner entry forwards the stream through
// byte-identically, and with the owner dead the survivor answers the
// same stream in degraded mode (graphs are replica-local state, so
// every replica can evaluate).
func TestClusterQueryForwarding(t *testing.T) {
	reps := startTestCluster(t, 3)
	for _, rep := range reps {
		registerEx2ViewGraph(t, rep.url(""))
	}
	single, _ := testServer(t)
	registerEx2ViewGraph(t, single.URL)

	key, err := ex2Query.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	owner := reps[0].cl.ring.Owner(key)
	entry := -1
	ownerIdx := -1
	for i, rep := range reps {
		if rep.addr == owner {
			ownerIdx = i
		} else if entry == -1 {
			entry = i
		}
	}

	resp, raw := post(t, reps[entry].url("/v1/query"), ex2Query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	_, sraw := post(t, single.URL+"/v1/query", ex2Query)
	if string(raw) != string(sraw) {
		t.Fatalf("forwarded stream differs from single-node:\ncluster: %s\nsingle:  %s", raw, sraw)
	}
	if got := reps[entry].counter("cluster.forwarded"); got != 1 {
		t.Fatalf("cluster.forwarded = %d, want 1", got)
	}
	if reps[ownerIdx].eng.Stats().Compiles != 1 {
		t.Fatal("the owner must have compiled the query's plan")
	}

	// Kill the owner: the same query through the survivor still answers
	// the full stream, marked degraded in the header line.
	reps[ownerIdx].kill()
	resp2, raw2 := post(t, reps[entry].url("/v1/query"), ex2Query)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("degraded query status %d: %s", resp2.StatusCode, raw2)
	}
	lines := ndLines(t, raw2)
	head, tail := lines[0], lines[len(lines)-1]
	if head["degraded"] != true {
		t.Fatalf("degraded query header = %v", head)
	}
	if tail["type"] != "trailer" || tail["answers"] != float64(4) {
		t.Fatalf("degraded query trailer = %v", tail)
	}
}

// decodeBody decodes a JSON response body and closes it.
func decodeBody(resp *http.Response, dst any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, dst)
}
