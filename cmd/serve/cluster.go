package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	regexrwclient "regexrw/client"
	"regexrw/internal/cluster"
	"regexrw/internal/obs"
)

// clusterState is the replica's view of the cluster: its own address,
// the consistent-hash ring built from the static -peers list, and the
// forwarding transport with its per-peer circuit breakers.
type clusterState struct {
	self  string
	ring  *cluster.Ring
	peers *cluster.PeerSet
	reg   *obs.Registry
}

// newClusterState parses the -peers/-self flags. Both empty means
// single-node mode (nil state, no routing layer); giving only one of
// them is a configuration error, as is a -self absent from -peers —
// such a replica would own nothing and forward everything, which is
// never what the operator meant.
func newClusterState(peersCSV, self string, reg *obs.Registry) (*clusterState, error) {
	peers := regexrwclient.ParseServers(peersCSV)
	if len(peers) == 0 && self == "" {
		return nil, nil
	}
	if len(peers) == 0 || self == "" {
		return nil, fmt.Errorf("cluster mode needs both -peers and -self")
	}
	ring, err := cluster.NewRing(peers, 0)
	if err != nil {
		return nil, err
	}
	member := false
	for _, p := range ring.Peers() {
		if p == self {
			member = true
		}
	}
	if !member {
		return nil, fmt.Errorf("-self %q is not in -peers %v", self, ring.Peers())
	}
	cs := &clusterState{self: self, ring: ring, reg: reg}
	cs.peers = cluster.NewPeerSet(
		cluster.WithBreakerHook(func(string) { reg.Counter("cluster.breaker_open").Add(1) }),
		// No overall timeout: /v1/query forwards stream NDJSON for as
		// long as the evaluation runs, bounded by the request context.
		// The dial and header timeouts keep a dead peer from stalling
		// the request path.
		cluster.WithHTTPClient(&http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			ResponseHeaderTimeout: 10 * time.Second,
		}}),
	)
	return cs, nil
}

// owns reports whether this replica owns the plan key.
func (cs *clusterState) owns(key string) bool { return cs.ring.Owns(cs.self, key) }

// clusterStatusJSON is the cluster section of GET /readyz.
type clusterStatusJSON struct {
	Self string        `json:"self"`
	Ring cluster.Stats `json:"ring"`
	// Down lists peers whose circuit breaker is currently open.
	Down []string `json:"down,omitempty"`
}

func (cs *clusterState) statusJSON() *clusterStatusJSON {
	st := &clusterStatusJSON{Self: cs.self, Ring: cs.ring.Stats()}
	for _, p := range cs.ring.Others(cs.self) {
		if cs.peers.Down(p) {
			st.Down = append(st.Down, p)
		}
	}
	return st
}

// routeInfo is the routing decision for a locally-served request,
// carried in the request context so the handlers can mark degraded
// responses and record the engine.route span.
type routeInfo struct {
	// ownerIndex is the key owner's index within the ring's sorted peer
	// list (span attributes are integers); -1 when no key was computable.
	ownerIndex int64
	// degraded marks a request this replica computed without owning the
	// key, because the owner was unreachable or the forward-depth limit
	// was reached.
	degraded bool
}

type routeCtxKey struct{}

func withRoute(ctx context.Context, ri routeInfo) context.Context {
	return context.WithValue(ctx, routeCtxKey{}, ri)
}

func routeFrom(ctx context.Context) (routeInfo, bool) {
	ri, ok := ctx.Value(routeCtxKey{}).(routeInfo)
	return ri, ok
}

// routeDegraded reports whether the current request is served in
// degraded mode (computed here, owned elsewhere).
func routeDegraded(ctx context.Context) bool {
	ri, ok := routeFrom(ctx)
	return ok && ri.degraded
}

// routeSpan opens the engine.route span under the request's tracer
// (nil-safe without one), recording the routing decision: the owner's
// ring index and whether the request ran locally by ownership or by
// degradation. Single-node servers have no routeInfo and no span, so
// existing golden traces are unchanged.
func routeSpan(ctx context.Context) (context.Context, *obs.Span) {
	ri, ok := routeFrom(ctx)
	if !ok {
		return ctx, nil
	}
	ctx, span := obs.StartSpan(ctx, "engine.route") //spancheck:ignore returned to the handler, which Ends it around the engine call
	span.SetAttr("owner", ri.ownerIndex)
	if ri.degraded {
		span.SetAttr("degraded", 1)
	} else {
		span.SetAttr("local", 1)
	}
	return ctx, span
}

// router wraps the local server handler with consistent-hash routing
// for the three plan-keyed endpoints. Everything else (health, graphs,
// metrics) is replica-local by design.
type router struct {
	cl    *clusterState
	local http.Handler
}

// newRouter returns local unchanged when cl is nil (single-node mode).
func newRouter(cl *clusterState, local http.Handler) http.Handler {
	if cl == nil {
		return local
	}
	return &router{cl: cl, local: local}
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		switch r.URL.Path {
		case "/v1/rewrite", "/v1/rpq", "/v1/query":
			rt.route(w, r)
			return
		}
	}
	rt.local.ServeHTTP(w, r)
}

// route dispatches one plan-keyed request:
//
//   - owned keys are served locally (cluster.local);
//   - non-owned keys forward to the owner with the depth header bumped
//     (cluster.forwarded), unless the client asked not to forward —
//     then 421 not_owner names the owner;
//   - when the owner is unreachable after the transport's retries, or
//     the request already travelled the maximum forward depth (ring
//     views disagree), the replica computes locally and marks the
//     response degraded (cluster.degraded). A dead peer never fails a
//     request.
func (rt *router) route(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: "body: " + err.Error()})
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	key, ok := routeKey(r.URL.Path, body)
	if !ok {
		// Unparsable request: no key to route by. The local handler
		// produces the canonical 400 envelope.
		rt.serveLocal(w, r, routeInfo{ownerIndex: -1})
		return
	}
	idx := int64(rt.cl.ring.OwnerIndex(key))
	owner := rt.cl.ring.Owner(key)
	if owner == rt.cl.self {
		rt.cl.reg.Counter("cluster.local").Add(1)
		rt.serveLocal(w, r, routeInfo{ownerIndex: idx})
		return
	}
	if cluster.Depth(r.Header) >= cluster.MaxForwardDepth {
		// A peer forwarded here believing we own this key: the ring
		// views disagree (half-rolled peer list). Compute locally rather
		// than risk a forwarding loop.
		rt.cl.reg.Counter("cluster.degraded").Add(1)
		rt.serveDegraded(w, r, idx)
		return
	}
	if r.Header.Get(cluster.NoForwardHeader) != "" {
		rt.cl.reg.Counter("cluster.not_owner").Add(1)
		writeError(w, http.StatusMisdirectedRequest, errorJSON{
			Code:    "not_owner",
			Message: fmt.Sprintf("plan key %s is owned by %s", key, owner),
			Owner:   owner,
		})
		return
	}
	hdr := http.Header{}
	hdr.Set(cluster.ForwardedHeader, strconv.Itoa(cluster.Depth(r.Header)+1))
	resp, err := rt.cl.peers.Forward(r.Context(), owner, r.URL.Path, hdr, body)
	if err != nil {
		rt.cl.reg.Counter("cluster.degraded").Add(1)
		rt.serveDegraded(w, r, idx)
		return
	}
	defer resp.Body.Close()
	rt.cl.reg.Counter("cluster.forwarded").Add(1)
	copyResponse(w, resp)
}

func (rt *router) serveLocal(w http.ResponseWriter, r *http.Request, ri routeInfo) {
	rt.local.ServeHTTP(w, r.WithContext(withRoute(r.Context(), ri)))
}

func (rt *router) serveDegraded(w http.ResponseWriter, r *http.Request, ownerIdx int64) {
	w.Header().Set(cluster.DegradedHeader, "1")
	rt.serveLocal(w, r, routeInfo{ownerIndex: ownerIdx, degraded: true})
}

// routeKey computes the plan key a request routes by. Decoding here is
// deliberately lenient (no DisallowUnknownFields): a request the local
// handler would reject still routes to its owner, whose rejection is
// the canonical one.
func routeKey(path string, body []byte) (string, bool) {
	switch path {
	case "/v1/rewrite":
		var req rewriteRequest
		if json.Unmarshal(body, &req) != nil {
			return "", false
		}
		key, err := req.PlanKey()
		return key, err == nil
	case "/v1/rpq":
		var req rpqRequest
		if json.Unmarshal(body, &req) != nil {
			return "", false
		}
		key, err := req.PlanKey()
		return key, err == nil
	case "/v1/query":
		var req queryRequest
		if json.Unmarshal(body, &req) != nil {
			return "", false
		}
		key, err := req.PlanKey()
		return key, err == nil
	}
	return "", false
}

// copyResponse relays a forwarded response, flushing after every write
// so NDJSON answer streams keep flowing through the forwarding hop.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(flushWriter{w}, resp.Body)
}

type flushWriter struct{ w http.ResponseWriter }

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}
