package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// ndLines splits an NDJSON body into decoded generic lines.
func ndLines(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

var ex2Query = queryRequest{
	Query: "a·(b·a+c)*",
	Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
	Graph: "vg",
}

// registerEx2ViewGraph registers the view-image chain
// x --e2--> y --e1--> z --e3--> w under the handle "vg".
func registerEx2ViewGraph(t *testing.T, url string) {
	t.Helper()
	resp, raw := post(t, url+"/v1/graphs", registerGraphRequest{
		Name: "vg",
		Text: "x e2 y\ny e1 z\nz e3 w\n",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register graph: status %d: %s", resp.StatusCode, raw)
	}
	info := decode[graphInfo](t, raw)
	if info.Nodes != 4 || info.Edges != 3 {
		t.Fatalf("registered graph info = %+v, want 4 nodes / 3 edges", info)
	}
}

func TestServeQueryStreamsNDJSON(t *testing.T) {
	ts, _ := testServer(t)
	registerEx2ViewGraph(t, ts.URL)

	resp, raw := post(t, ts.URL+"/v1/query", ex2Query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	lines := ndLines(t, raw)
	if len(lines) < 2 {
		t.Fatalf("want header + answers + trailer, got %d lines: %s", len(lines), raw)
	}
	head, tail := lines[0], lines[len(lines)-1]
	if head["type"] != "header" || head["rewriting"] != "e2*·e1·e3*" || head["exact"] != true {
		t.Fatalf("bad header: %v", head)
	}
	if tail["type"] != "trailer" || tail["answers"] != float64(4) {
		t.Fatalf("bad trailer: %v", tail)
	}
	// e2*·e1·e3* over the chain: x→z, x→w, y→z, y→w.
	got := map[string]bool{}
	for _, l := range lines[1 : len(lines)-1] {
		if l["type"] != "answer" {
			t.Fatalf("unexpected line between header and trailer: %v", l)
		}
		got[l["from"].(string)+"→"+l["to"].(string)] = true
	}
	for _, want := range []string{"x→z", "x→w", "y→z", "y→w"} {
		if !got[want] {
			t.Fatalf("missing answer %s in %v", want, got)
		}
	}
}

func TestServeQuerySingleSourceAndBoolean(t *testing.T) {
	ts, _ := testServer(t)
	registerEx2ViewGraph(t, ts.URL)

	req := ex2Query
	req.Source = "x"
	_, raw := post(t, ts.URL+"/v1/query", req)
	lines := ndLines(t, raw)
	if tail := lines[len(lines)-1]; tail["answers"] != float64(2) {
		t.Fatalf("single-source trailer: %v", tail)
	}

	req.Target = "w"
	_, raw = post(t, ts.URL+"/v1/query", req)
	lines = ndLines(t, raw)
	if tail := lines[len(lines)-1]; tail["matched"] != true || tail["answers"] != float64(0) {
		t.Fatalf("boolean trailer: %v", tail)
	}

	req.Target = "x"
	_, raw = post(t, ts.URL+"/v1/query", req)
	lines = ndLines(t, raw)
	if tail := lines[len(lines)-1]; tail["matched"] != false {
		t.Fatalf("boolean trailer for non-answer: %v", tail)
	}
}

func TestServeQueryMaxAnswersTruncates(t *testing.T) {
	ts, _ := testServer(t)
	registerEx2ViewGraph(t, ts.URL)
	req := ex2Query
	req.MaxAnswers = 1
	_, raw := post(t, ts.URL+"/v1/query", req)
	lines := ndLines(t, raw)
	tail := lines[len(lines)-1]
	if tail["answers"] != float64(1) || tail["truncated"] != true {
		t.Fatalf("truncated trailer: %v", tail)
	}
}

func TestServeQueryErrorsBeforeStream(t *testing.T) {
	ts, _ := testServer(t)
	registerEx2ViewGraph(t, ts.URL)

	// Unregistered graph: 404 with the standard envelope.
	req := ex2Query
	req.Graph = "nope"
	resp, raw := post(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if env := decode[errorEnvelope](t, raw); env.Error.Code != "unknown_graph" {
		t.Fatalf("error code %q, want unknown_graph", env.Error.Code)
	}

	// Malformed query: 400 before any stream bytes.
	req = ex2Query
	req.Query = "a·(("
	resp, raw = post(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if strings.Contains(string(raw), `"type":"header"`) {
		t.Fatalf("stream started despite compile error: %s", raw)
	}

	// Unknown source node: envelope, not a stream.
	req = ex2Query
	req.Source = "ghost"
	resp, raw = post(t, ts.URL+"/v1/query", req)
	lines := ndLines(t, raw)
	if last := lines[len(lines)-1]; last["type"] != "error" {
		t.Fatalf("want mid-stream error line for unknown node, got %v (status %d)", last, resp.StatusCode)
	}

	// Bad mode.
	req = ex2Query
	req.Mode = "psychic"
	resp, raw = post(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
}

func TestServeQueryBudgetExceededMidStream(t *testing.T) {
	ts, _ := testServer(t)
	// A grid big enough that MaxStates=40 dies during evaluation but
	// comfortably after the (tiny) compile.
	resp, raw := post(t, ts.URL+"/v1/graphs", registerGraphRequest{Name: "grid", Spec: "grid:30x30:v1,v1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register grid: %d %s", resp.StatusCode, raw)
	}
	req := queryRequest{
		Query:     "a*",
		Views:     map[string]string{"v1": "a"},
		Graph:     "grid",
		MaxStates: 40,
	}
	_, raw = post(t, ts.URL+"/v1/query", req)
	lines := ndLines(t, raw)
	last := lines[len(lines)-1]
	if last["type"] != "error" {
		t.Fatalf("want trailing error line, got %v", last)
	}
	errObj := last["error"].(map[string]any)
	if errObj["code"] != "budget_exceeded" {
		t.Fatalf("mid-stream error code %v, want budget_exceeded", errObj["code"])
	}
}

func TestServeGraphRegistry(t *testing.T) {
	ts, _ := testServer(t)
	registerEx2ViewGraph(t, ts.URL)
	resp, raw := post(t, ts.URL+"/v1/graphs", registerGraphRequest{Name: "g2", Spec: "chain:5:a"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register spec graph: %d %s", resp.StatusCode, raw)
	}
	httpResp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var listing struct {
		Graphs []graphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Graphs) != 2 || listing.Graphs[0].Name != "g2" || listing.Graphs[1].Name != "vg" {
		t.Fatalf("listing = %+v, want [g2 vg]", listing.Graphs)
	}

	// Bad registrations.
	for _, bad := range []registerGraphRequest{
		{Name: "", Spec: "chain:3:a"},
		{Name: "x"},
		{Name: "x", Spec: "chain:3:a", Text: "a b c\n"},
		{Name: "x", Spec: "grid:0x0"},
		{Name: "x", Text: "truncated line"},
	} {
		resp, _ := post(t, ts.URL+"/v1/graphs", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad registration %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestServeQueryModeQuery(t *testing.T) {
	ts, _ := testServer(t)
	// Base-alphabet graph: x --a--> y --b--> z --a--> w.
	resp, raw := post(t, ts.URL+"/v1/graphs", registerGraphRequest{
		Name: "base", Text: "x a y\ny b z\nz a w\n",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	req := queryRequest{
		Query:  "a·(b·a+c)*",
		Views:  map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
		Graph:  "base",
		Mode:   "query",
		Source: "x",
	}
	_, raw = post(t, ts.URL+"/v1/query", req)
	lines := ndLines(t, raw)
	if tail := lines[len(lines)-1]; tail["answers"] != float64(2) {
		t.Fatalf("mode=query trailer: %v (lines %v)", tail, lines)
	}
}
