package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/engine"
	"regexrw/internal/eval"
	"regexrw/internal/obs"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// server wraps an engine.Engine behind the HTTP/JSON API. All state is
// in the engine and the boot-time readiness tracker; the server itself
// is stateless and safe for concurrent use.
type server struct {
	eng    *engine.Engine
	rd     *readiness
	graphs *graphSet
}

// newServer returns the HTTP handler serving the engine:
//
//	POST /v1/rewrite  — compile (or fetch) the plan for a regex instance
//	POST /v1/rpq      — the same for a regular path query under a theory
//	POST /v1/query    — answer an RPQ over a registered graph (NDJSON)
//	POST /v1/graphs   — register a graph (generator spec or text codec)
//	GET  /v1/graphs   — list registered graphs
//	GET  /healthz     — liveness plus the engine's cache/compile counters
//	GET  /readyz      — readiness: 503 until warm start + manifest finish
//	GET  /metrics     — Prometheus text exposition of the registry
//
// rd may be nil (tests without a boot sequence): the server is then
// always ready. graphs may be nil: an empty registry is created (graphs
// can still be registered over HTTP).
func newServer(eng *engine.Engine, rd *readiness, graphs *graphSet) http.Handler {
	if graphs == nil {
		graphs = newGraphSet()
	}
	s := &server{eng: eng, rd: rd, graphs: graphs}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rewrite", s.handleRewrite)
	mux.HandleFunc("POST /v1/rpq", s.handleRPQ)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/graphs", s.handleRegisterGraph)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// rewriteRequest is the body of POST /v1/rewrite.
type rewriteRequest struct {
	// Query is E0 in the concrete syntax; Views maps view names to
	// expressions.
	Query string            `json:"query"`
	Views map[string]string `json:"views"`
	// Partial also runs the anytime partial-rewriting search when the
	// maximal rewriting is not exact.
	Partial bool `json:"partial,omitempty"`
	// MaxStates/MaxTransitions/TimeoutMS tighten the engine's per-request
	// governance defaults; they can only lower the server's caps.
	MaxStates      int   `json:"max_states,omitempty"`
	MaxTransitions int   `json:"max_transitions,omitempty"`
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	// Trace attaches a per-request tracer and returns the exported span
	// tree in the response.
	Trace bool `json:"trace,omitempty"`
}

// rpqRequest is the body of POST /v1/rpq.
type rpqRequest struct {
	// Query is the path expression over formula names; Formulas defines
	// each name (theory formula syntax: "=a", "city", "p && !q", …).
	Query    string            `json:"query"`
	Formulas map[string]string `json:"formulas"`
	// Views are the view path queries; a view without its own formulas
	// shares the query's.
	Views []rpqViewJSON `json:"views"`
	// Theory is the finite interpretation; omitted means the empty
	// theory.
	Theory *theoryJSON `json:"theory,omitempty"`
	// Method is "grounded" (default), "direct" or "compressed".
	Method string `json:"method,omitempty"`

	MaxStates      int   `json:"max_states,omitempty"`
	MaxTransitions int   `json:"max_transitions,omitempty"`
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	Trace          bool  `json:"trace,omitempty"`
}

type rpqViewJSON struct {
	Name     string            `json:"name"`
	Query    string            `json:"query"`
	Formulas map[string]string `json:"formulas,omitempty"`
}

type theoryJSON struct {
	Constants  []string            `json:"constants"`
	Predicates map[string][]string `json:"predicates,omitempty"`
}

// planResponse is the successful response of both rewrite endpoints.
type planResponse struct {
	// Key is the plan's canonical cache key.
	Key string `json:"key"`
	// Rewriting is the (maximal) rewriting as an expression over view
	// names.
	Rewriting string `json:"rewriting"`
	// Exact / Verdict report exactness; Verdict is "yes", "no" or
	// "unknown" (budget ran out before the check decided).
	Exact   bool   `json:"exact"`
	Verdict string `json:"verdict"`
	// Witness is a shortest word of L(E0) \ exp(L(R)) when Verdict is
	// "no".
	Witness []string `json:"witness,omitempty"`
	// ShortestWord is a shortest view-word with non-empty expansion.
	ShortestWord []string `json:"shortest_word,omitempty"`
	// Empty / SigmaEmpty are the Section 3.2 emptiness diagnostics.
	Empty      bool `json:"empty"`
	SigmaEmpty bool `json:"sigma_empty"`
	// States is the number of automaton states the cold compile
	// materialized (cache hits repeat the cold number: that is the work
	// the hit saved).
	States int64 `json:"states"`
	// Partial reports the partial-rewriting search when requested.
	Partial *partialJSON `json:"partial,omitempty"`
	// Trace is the per-request span tree when the request set trace.
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

type partialJSON struct {
	// Exact reports whether the search proved its extension exact before
	// the budget ran out.
	Exact bool `json:"exact"`
	// Added lists the elementary views the search added.
	Added []string `json:"added,omitempty"`
	// Rewriting is the extended instance's rewriting.
	Rewriting string `json:"rewriting"`
	// Stage names the budget stage that stopped an inexact search.
	Stage string `json:"stage,omitempty"`
}

// errorJSON is the structured error envelope, mirroring the CLI's
// taxonomy: resource exhaustion is a client-addressable condition (raise
// the caps or simplify the instance), not a server fault, so it maps to
// 4xx with the stage diagnostics the budget layer recorded.
type errorJSON struct {
	// Code is one of bad_request, unknown_graph, budget_exceeded,
	// state_limit, queue_full, deadline, closed, internal.
	Code    string `json:"code"`
	Message string `json:"message"`
	// Stage/Resource/Limit/Used carry the budget diagnostics for
	// budget_exceeded.
	Stage    string `json:"stage,omitempty"`
	Resource string `json:"resource,omitempty"`
	Limit    int64  `json:"limit,omitempty"`
	Used     int64  `json:"used,omitempty"`
}

func (s *server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	var req rewriteRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	inst, err := core.ParseInstance(req.Query, req.Views)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	ctx, tr := traceCtx(r.Context(), req.Trace)
	plan, err := s.eng.Rewrite(ctx, engine.Request{
		Instance:       inst,
		Partial:        req.Partial,
		MaxStates:      req.MaxStates,
		MaxTransitions: req.MaxTransitions,
		Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
	})
	s.respond(w, plan, err, tr)
}

func (s *server) handleRPQ(w http.ResponseWriter, r *http.Request) {
	var req rpqRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	ereq, err := buildRPQ(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	ctx, tr := traceCtx(r.Context(), req.Trace)
	plan, err := s.eng.RewriteRPQ(ctx, ereq)
	s.respond(w, plan, err, tr)
}

// buildRPQ parses the wire form into an engine RPQRequest; every error
// here is the client's.
func buildRPQ(req rpqRequest) (engine.RPQRequest, error) {
	var method rpq.Method
	switch req.Method {
	case "", "grounded":
		method = rpq.Grounded
	case "direct":
		method = rpq.Direct
	case "compressed":
		method = rpq.Compressed
	default:
		return engine.RPQRequest{}, fmt.Errorf("unknown method %q (want grounded, direct or compressed)", req.Method)
	}
	tt := theory.New()
	if req.Theory != nil {
		tt.AddConstants(req.Theory.Constants...)
		// String-keyed, so iteration order is not analyzer-relevant;
		// Declare only accumulates membership sets and the
		// interpretation canonicalizes on read.
		for pred, members := range req.Theory.Predicates {
			tt.Declare(pred, members...)
		}
	}
	q0, err := rpq.ParseQuery(req.Query, req.Formulas)
	if err != nil {
		return engine.RPQRequest{}, err
	}
	views := make([]rpq.View, 0, len(req.Views))
	for _, v := range req.Views {
		if v.Name == "" {
			return engine.RPQRequest{}, fmt.Errorf("view without a name")
		}
		formulas := v.Formulas
		if formulas == nil {
			formulas = req.Formulas
		}
		vq, err := rpq.ParseQuery(v.Query, formulas)
		if err != nil {
			return engine.RPQRequest{}, fmt.Errorf("view %s: %w", v.Name, err)
		}
		views = append(views, rpq.View{Name: v.Name, Query: vq})
	}
	return engine.RPQRequest{
		Query: q0, Views: views, Theory: tt, Method: method,
		MaxStates:      req.MaxStates,
		MaxTransitions: req.MaxTransitions,
		Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
	}, nil
}

// respond writes the plan or maps the engine error onto the HTTP
// taxonomy.
func (s *server) respond(w http.ResponseWriter, plan *engine.Plan, err error, tr *obs.Tracer) {
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := planResponse{
		Key:        string(plan.Key()),
		Rewriting:  plan.Regex().String(),
		Exact:      plan.IsExact(),
		Verdict:    plan.Exactness().Verdict.String(),
		Witness:    plan.Witness(),
		Empty:      plan.IsEmpty(),
		SigmaEmpty: plan.IsSigmaEmpty(),
		States:     plan.States(),
	}
	if w2, ok := plan.ShortestWord(); ok {
		resp.ShortestWord = w2
	}
	if pr := plan.Partial(); pr != nil {
		resp.Partial = &partialJSON{
			Exact:     pr.Exact,
			Added:     pr.Result.Added,
			Rewriting: pr.Result.Rewriting.Regex().String(),
			Stage:     pr.Stage,
		}
	}
	if tr != nil {
		resp.Trace = tr.Export()
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeEngineError maps the engine's error taxonomy onto status codes:
// resource exhaustion is 422 (the request as posed cannot be served
// under its caps), admission rejection is 429 (retry against a less
// loaded server), deadline is 504, closed is 503.
func writeEngineError(w http.ResponseWriter, err error) {
	status, ej := engineError(err)
	if ej.Code == "queue_full" {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, status, ej)
}

// engineError classifies an engine error into the taxonomy; the query
// streaming path reuses the envelope for mid-stream error lines.
func engineError(err error) (int, errorJSON) {
	var ex *budget.ExceededError
	switch {
	case errors.As(err, &ex):
		return http.StatusUnprocessableEntity, errorJSON{
			Code: "budget_exceeded", Message: err.Error(),
			Stage: ex.Stage, Resource: string(ex.Resource), Limit: ex.Limit, Used: ex.Used,
		}
	case errors.Is(err, automata.ErrStateLimit):
		return http.StatusUnprocessableEntity, errorJSON{Code: "state_limit", Message: err.Error()}
	case errors.Is(err, engine.ErrQueueFull):
		return http.StatusTooManyRequests, errorJSON{Code: "queue_full", Message: err.Error()}
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable, errorJSON{Code: "closed", Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, errorJSON{Code: "deadline", Message: err.Error()}
	case errors.Is(err, context.Canceled):
		// The client went away; 499-style, but stdlib has no constant.
		return 499, errorJSON{Code: "canceled", Message: err.Error()}
	case errors.Is(err, eval.ErrUnknownNode):
		return http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()}
	case errors.Is(err, engine.ErrNoGraph):
		return http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()}
	default:
		return http.StatusInternalServerError, errorJSON{Code: "internal", Message: err.Error()}
	}
}

// healthResponse is GET /healthz.
type healthResponse struct {
	Status string       `json:"status"`
	Stats  engine.Stats `json:"stats"`
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Stats: s.eng.Stats()})
}

// handleReady distinguishes "alive" from "warmed": /healthz answers 200
// the moment the listener is up, /readyz answers 503 with warm-up
// progress until the plan store has been restored and the manifest
// precompiled, then 200. Load balancers gate on /readyz so a restarted
// instance only takes traffic once it serves at cache-hit latency.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.rd == nil {
		writeJSON(w, http.StatusOK, readyResponse{Status: "ready"})
		return
	}
	resp := s.rd.response()
	status := http.StatusOK
	if resp.Status != "ready" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.eng.Metrics().WritePrometheus(w)
}

func traceCtx(ctx context.Context, trace bool) (context.Context, *obs.Tracer) {
	if !trace {
		return ctx, nil
	}
	tr := obs.NewTracer()
	return obs.WithTracer(ctx, tr), tr
}

const maxBodyBytes = 1 << 20 // requests are expressions, not data

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, e errorJSON) {
	writeJSON(w, status, struct {
		Error errorJSON `json:"error"`
	}{e})
}
