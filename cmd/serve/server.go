package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	regexrwclient "regexrw/client"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/engine"
	"regexrw/internal/eval"
	"regexrw/internal/obs"
)

// server wraps an engine.Engine behind the HTTP/JSON API. All state is
// in the engine and the boot-time readiness tracker; the server itself
// is stateless and safe for concurrent use.
type server struct {
	eng    *engine.Engine
	rd     *readiness
	graphs *graphSet
	// cl, when non-nil, is the cluster view rendered on /readyz. The
	// routing itself lives in the router wrapper (newRouter), not here.
	cl *clusterState
}

// newServer returns the HTTP handler serving the engine:
//
//	POST /v1/rewrite  — compile (or fetch) the plan for a regex instance
//	POST /v1/rpq      — the same for a regular path query under a theory
//	POST /v1/query    — answer an RPQ over a registered graph (NDJSON)
//	POST /v1/graphs   — register a graph (generator spec or text codec)
//	GET  /v1/graphs   — list registered graphs
//	GET  /healthz     — liveness plus the engine's cache/compile counters
//	GET  /readyz      — readiness: 503 until warm start + manifest finish
//	GET  /metrics     — Prometheus text exposition of the registry
//
// rd may be nil (tests without a boot sequence): the server is then
// always ready. graphs may be nil: an empty registry is created (graphs
// can still be registered over HTTP).
func newServer(eng *engine.Engine, rd *readiness, graphs *graphSet) http.Handler {
	return newServerWith(eng, rd, graphs, nil)
}

// newServerWith is newServer plus the cluster view for /readyz; cl may
// be nil (single-node).
func newServerWith(eng *engine.Engine, rd *readiness, graphs *graphSet, cl *clusterState) http.Handler {
	if graphs == nil {
		graphs = newGraphSet()
	}
	s := &server{eng: eng, rd: rd, graphs: graphs, cl: cl}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rewrite", s.handleRewrite)
	mux.HandleFunc("POST /v1/rpq", s.handleRPQ)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/graphs", s.handleRegisterGraph)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// The wire schema is defined once, in the regexrwclient package, and
// aliased here: the server cannot drift from the client field by
// field. See client/wire.go for the documented definitions.
type (
	rewriteRequest = regexrwclient.RewriteRequest
	rpqRequest     = regexrwclient.RPQRequest
	rpqViewJSON    = regexrwclient.RPQView
	theoryJSON     = regexrwclient.Theory
	planResponse   = regexrwclient.PlanResponse
	partialJSON    = regexrwclient.PartialResult
	errorJSON      = regexrwclient.ErrorDetail
)

func (s *server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	var req rewriteRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	inst, err := core.ParseInstance(req.Query, req.Views)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	ctx, tr := traceCtx(r.Context(), req.Trace)
	ctx, span := routeSpan(ctx)
	plan, err := s.eng.Rewrite(ctx, engine.Request{
		Instance:       inst,
		Partial:        req.Partial,
		MaxStates:      req.MaxStates,
		MaxTransitions: req.MaxTransitions,
		Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
	})
	span.End()
	s.respond(w, r, plan, err, tr)
}

func (s *server) handleRPQ(w http.ResponseWriter, r *http.Request) {
	var req rpqRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	ereq, err := buildRPQ(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()})
		return
	}
	ctx, tr := traceCtx(r.Context(), req.Trace)
	ctx, span := routeSpan(ctx)
	plan, err := s.eng.RewriteRPQ(ctx, ereq)
	span.End()
	s.respond(w, r, plan, err, tr)
}

// buildRPQ parses the wire form into an engine RPQRequest; every error
// here is the client's. The translation lives on the shared wire type
// so the cluster-aware client computes routing keys from the exact
// same parse.
func buildRPQ(req rpqRequest) (engine.RPQRequest, error) {
	return req.ToEngine()
}

// respond writes the plan or maps the engine error onto the HTTP
// taxonomy.
func (s *server) respond(w http.ResponseWriter, r *http.Request, plan *engine.Plan, err error, tr *obs.Tracer) {
	degraded := routeDegraded(r.Context())
	if err != nil {
		writeEngineErrorDegraded(w, err, degraded)
		return
	}
	resp := planResponse{
		Key:        string(plan.Key()),
		Rewriting:  plan.Regex().String(),
		Exact:      plan.IsExact(),
		Verdict:    plan.Exactness().Verdict.String(),
		Witness:    plan.Witness(),
		Empty:      plan.IsEmpty(),
		SigmaEmpty: plan.IsSigmaEmpty(),
		States:     plan.States(),
	}
	if w2, ok := plan.ShortestWord(); ok {
		resp.ShortestWord = w2
	}
	if pr := plan.Partial(); pr != nil {
		resp.Partial = &partialJSON{
			Exact:     pr.Exact,
			Added:     pr.Result.Added,
			Rewriting: pr.Result.Rewriting.Regex().String(),
			Stage:     pr.Stage,
		}
	}
	if degraded {
		resp.Degraded = true
	}
	if tr != nil {
		resp.Trace = tr.Export()
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeEngineError maps the engine's error taxonomy onto status codes:
// resource exhaustion is 422 (the request as posed cannot be served
// under its caps), admission rejection is 429 (retry against a less
// loaded server), deadline is 504, closed is 503.
func writeEngineError(w http.ResponseWriter, err error) {
	writeEngineErrorDegraded(w, err, false)
}

// writeEngineErrorDegraded is writeEngineError with the degraded-mode
// marker: failures while computing locally for an unreachable owner
// carry degraded in the envelope, so a client can tell "the owner
// would have had this cached" from an ordinary local failure.
func writeEngineErrorDegraded(w http.ResponseWriter, err error, degraded bool) {
	status, ej := engineError(err)
	ej.Degraded = degraded
	if ej.Code == "queue_full" {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, status, ej)
}

// engineError classifies an engine error into the taxonomy; the query
// streaming path reuses the envelope for mid-stream error lines, so
// the version is stamped here (not only in writeError) and both paths
// carry it.
func engineError(err error) (int, errorJSON) {
	status, ej := engineErrorDetail(err)
	ej.V = regexrwclient.EnvelopeVersion
	return status, ej
}

func engineErrorDetail(err error) (int, errorJSON) {
	var ex *budget.ExceededError
	switch {
	case errors.As(err, &ex):
		return http.StatusUnprocessableEntity, errorJSON{
			Code: "budget_exceeded", Message: err.Error(),
			Stage: ex.Stage, Resource: string(ex.Resource), Limit: ex.Limit, Used: ex.Used,
		}
	case errors.Is(err, automata.ErrStateLimit):
		return http.StatusUnprocessableEntity, errorJSON{Code: "state_limit", Message: err.Error()}
	case errors.Is(err, engine.ErrQueueFull):
		return http.StatusTooManyRequests, errorJSON{Code: "queue_full", Message: err.Error()}
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable, errorJSON{Code: "closed", Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, errorJSON{Code: "deadline", Message: err.Error()}
	case errors.Is(err, context.Canceled):
		// The client went away; 499-style, but stdlib has no constant.
		return 499, errorJSON{Code: "canceled", Message: err.Error()}
	case errors.Is(err, eval.ErrUnknownNode):
		return http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()}
	case errors.Is(err, engine.ErrNoGraph):
		return http.StatusBadRequest, errorJSON{Code: "bad_request", Message: err.Error()}
	default:
		return http.StatusInternalServerError, errorJSON{Code: "internal", Message: err.Error()}
	}
}

// healthResponse is GET /healthz.
type healthResponse struct {
	Status string       `json:"status"`
	Stats  engine.Stats `json:"stats"`
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Stats: s.eng.Stats()})
}

// handleReady distinguishes "alive" from "warmed": /healthz answers 200
// the moment the listener is up, /readyz answers 503 with warm-up
// progress until the plan store has been restored and the manifest
// precompiled, then 200. Load balancers gate on /readyz so a restarted
// instance only takes traffic once it serves at cache-hit latency.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	var resp readyResponse
	status := http.StatusOK
	if s.rd == nil {
		resp = readyResponse{Status: "ready"}
	} else {
		resp = s.rd.response()
		if resp.Status != "ready" {
			status = http.StatusServiceUnavailable
		}
	}
	if s.cl != nil {
		resp.Cluster = s.cl.statusJSON()
	}
	writeJSON(w, status, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.eng.Metrics().WritePrometheus(w)
}

func traceCtx(ctx context.Context, trace bool) (context.Context, *obs.Tracer) {
	if !trace {
		return ctx, nil
	}
	tr := obs.NewTracer()
	return obs.WithTracer(ctx, tr), tr
}

const maxBodyBytes = 1 << 20 // requests are expressions, not data

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError stamps the envelope version and wraps the detail in the
// {"error": {...}} envelope every endpoint shares.
func writeError(w http.ResponseWriter, status int, e errorJSON) {
	if e.V == 0 {
		e.V = regexrwclient.EnvelopeVersion
	}
	writeJSON(w, status, regexrwclient.ErrorEnvelope{Error: e})
}
