// Command serve exposes the rewriting engine over HTTP/JSON: a plan
// server for the view-based query-processing setting, where rewritings
// are compiled rarely and fetched constantly.
//
// Usage:
//
//	serve -addr :8080 -max-states 200000 -timeout 5s -plan-cache 1024 -max-inflight 8 -queue 32 \
//	      -plan-dir /var/lib/regexrw/plans -manifest workload.json
//
// -plan-dir enables the crash-safe persistent plan store: compiled
// plans are written behind to disk and restored on the next boot, so a
// restarted server serves its pre-crash working set without
// recompiling. -manifest precompiles a workload file at boot.
//
// -graph registers named databases for /v1/query at boot (repeatable;
// a file in the graph text codec or a generator spec like
// grid:1000x1000); more can be registered at runtime via POST
// /v1/graphs.
//
// -peers/-self enable cluster mode: the static peer list is hashed
// onto a consistent-hash ring that partitions the plan key space, each
// replica warm-starts and precompiles only its owned slice, and
// non-owned /v1/rewrite, /v1/rpq and /v1/query requests are forwarded
// to their owner (degrading to local compute when the owner is
// unreachable). See docs/SERVING.md, "Running a cluster".
//
// Endpoints: POST /v1/rewrite, POST /v1/rpq, POST /v1/query (NDJSON
// answer streaming over a registered graph), POST/GET /v1/graphs,
// GET /healthz, GET /readyz (503 until warm start and manifest
// precompilation finish), GET /metrics (Prometheus text). See
// docs/SERVING.md for the request and response schemas and the error
// taxonomy.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"regexrw/internal/engine"
	"regexrw/internal/obs"
	"regexrw/internal/planstore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the server and blocks until the listener fails or a
// shutdown signal arrives. ready, when non-nil, receives the bound
// address once the listener is up — tests use it to drive a real
// server on an ephemeral port.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	maxStates := fs.Int("max-states", 0, "default per-request cap on materialized automaton states (0 = unlimited)")
	maxTransitions := fs.Int("max-transitions", 0, "default per-request cap on materialized transitions (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "default per-request compile deadline (0 = none)")
	workers := fs.Int("workers", 0, "worker pool size for parallel compile stages (0 = GOMAXPROCS)")
	planCache := fs.Int("plan-cache", 1024, "plan cache capacity in plans (0 disables caching)")
	inflight := fs.Int("max-inflight", 0, "admission limit on concurrent compiles (0 = unlimited)")
	queue := fs.Int("queue", 0, "compile requests allowed to wait for an admission slot")
	planDir := fs.String("plan-dir", "", "directory for the persistent plan store (empty = memory only)")
	manifestPath := fs.String("manifest", "", "workload manifest JSON to precompile at boot")
	peersFlag := fs.String("peers", "", "comma-separated replica addresses forming the cluster (static; must include -self)")
	selfFlag := fs.String("self", "", "this replica's address exactly as it appears in -peers")
	var graphSpecs graphFlags
	fs.Var(&graphSpecs, "graph", "register a graph as name=spec (a file in the graph text codec, or a generator spec like grid:100x100; repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cl, err := newClusterState(*peersFlag, *selfFlag, obs.Default)
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 2
	}

	opts := []engine.Option{
		engine.WithBudgetDefaults(*maxStates, *maxTransitions),
		engine.WithDefaultTimeout(*timeout),
		engine.WithWorkers(*workers),
		engine.WithPlanCache(*planCache),
		engine.WithAdmissionLimit(*inflight, *queue),
		engine.WithMetrics(obs.Default),
	}
	// In cluster mode, bulk restore (WarmStart) and manifest
	// precompilation only materialize this replica's ring slice; the
	// request path still serves anything (forwarded or degraded).
	if cl != nil {
		opts = append(opts, engine.WithOwnership(func(k engine.Key) bool {
			return cl.owns(string(k))
		}))
	}
	// The store is strictly optional: if the directory cannot be opened
	// the server runs memory-only rather than refusing to boot — the
	// same degradation the engine applies to store failures at runtime.
	if *planDir != "" {
		store, err := planstore.Open(*planDir, planstore.WithMetrics(obs.Default))
		if err != nil {
			fmt.Fprintf(stderr, "serve: plan store disabled: %v\n", err)
		} else {
			opts = append(opts, engine.WithPlanStore(store))
		}
	}
	graphs := newGraphSet()
	if err := registerGraphFlags(graphs, graphSpecs); err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 2
	}
	var manifest *manifestFile
	if *manifestPath != "" {
		var err error
		if manifest, err = loadManifest(*manifestPath); err != nil {
			fmt.Fprintf(stderr, "serve: %v\n", err)
			return 2
		}
	}

	eng := engine.New(opts...)
	defer eng.Close()
	// On any exit path, let in-flight write-behind saves reach the plan
	// directory so the next boot warm-starts from everything this run
	// compiled.
	defer eng.FlushStore()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	rd := &readiness{reg: obs.Default}
	srv := &http.Server{
		Handler:           newRouter(cl, newServerWith(eng, rd, graphs, cl)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if cl != nil {
		fmt.Fprintf(stdout, "serve: cluster mode, self=%s peers=%v\n", cl.self, cl.ring.Peers())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Warm start + manifest precompilation run behind the listener:
	// the server accepts requests immediately (they compile on demand)
	// while /readyz holds back the load balancer until the cache is hot.
	go warmup(ctx, eng, rd, manifest, stdout)

	fmt.Fprintf(stdout, "serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "serve: %v\n", err)
			return 1
		}
	case <-ctx.Done():
		fmt.Fprintln(stdout, "serve: shutting down")
		eng.Close() // fail new work fast while in-flight compiles drain
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(stderr, "serve: shutdown: %v\n", err)
			return 1
		}
	}
	return 0
}
