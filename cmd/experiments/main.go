// Command experiments regenerates every experiment in the reproduction
// index (DESIGN.md Section 4 / EXPERIMENTS.md): the paper's worked
// examples, Figure 1, and the families realizing Theorems 2, 5–8 and
// the Section 4 results.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run THM8  # run experiments whose id contains THM8
//	experiments -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"regexrw/internal/cliobs"
	"regexrw/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	filter := fs.String("run", "", "run only experiments whose id contains this string")
	list := fs.Bool("list", false, "list experiment ids and exit")
	parallel := fs.Bool("parallel", false, "run experiments concurrently (timings get noisier)")
	asJSON := fs.Bool("json", false, "emit a JSON array of results (id, title, seconds, ok, output, metrics)")
	// The experiments runner has no context to carry a per-run registry,
	// so -metrics reports the process-wide counters (automata cache
	// effectiveness across the whole sweep).
	metrics := fs.Bool("metrics", false, "print process-wide pipeline metrics (Prometheus text format) to stderr at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *metrics {
		defer cliobs.WriteGlobalMetrics(stderr)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-5s %s\n", e.ID, e.Title)
		}
		return 0
	}
	runner := experiments.Run
	if *parallel {
		runner = experiments.RunParallel
	}
	if *asJSON {
		runner = experiments.RunJSON
	}
	if err := runner(stdout, *filter); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	return 0
}
