package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"EX1", "THM8", "RPQ3", "DUAL1", "GPQ1", "COST1"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingle(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "EX1"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "Σ_E-maximal rewriting") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "NOPE"}, &out, &errBuf); code != 1 {
		t.Fatal("unknown filter should exit 1")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	var seq, par bytes.Buffer
	if code := run([]string{"-run", "EX"}, &seq, &bytes.Buffer{}); code != 0 {
		t.Fatal("sequential failed")
	}
	if code := run([]string{"-run", "EX", "-parallel"}, &par, &bytes.Buffer{}); code != 0 {
		t.Fatal("parallel failed")
	}
	if seq.String() != par.String() {
		t.Fatal("parallel output differs from sequential")
	}
}

func TestRunJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "EX1", "-json"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var results []map[string]any
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 || results[0]["id"] != "EX1" || results[0]["ok"] != true {
		t.Fatalf("unexpected results: %v", results)
	}
	if !strings.Contains(results[0]["output"].(string), "rewriting") {
		t.Fatal("output missing")
	}
}

// TestRunJSONMetrics: experiments with a metrics variant embed their
// headline numbers — here THM8's per-n state counts and blowup ratios —
// in the JSON results.
func TestRunJSONMetrics(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "THM8", "-json"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var results []struct {
		ID      string             `json:"id"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 || results[0].ID != "THM8" {
		t.Fatalf("unexpected results: %+v", results)
	}
	m := results[0].Metrics
	if len(m) == 0 {
		t.Fatal("THM8 result carries no metrics")
	}
	for _, key := range []string{"n4_min_states", "n4_lower_bound", "n4_blowup_ratio", "n4_seconds"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %s: %v", key, m)
		}
	}
	if m["n4_min_states"] < m["n4_lower_bound"] {
		t.Fatalf("Theorem 8 violated in metrics: %v < %v", m["n4_min_states"], m["n4_lower_bound"])
	}
}
