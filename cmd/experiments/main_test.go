package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"EX1", "THM8", "RPQ3", "DUAL1", "GPQ1", "COST1"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingle(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "EX1"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "Σ_E-maximal rewriting") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "NOPE"}, &out, &errBuf); code != 1 {
		t.Fatal("unknown filter should exit 1")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	var seq, par bytes.Buffer
	if code := run([]string{"-run", "EX"}, &seq, &bytes.Buffer{}); code != 0 {
		t.Fatal("sequential failed")
	}
	if code := run([]string{"-run", "EX", "-parallel"}, &par, &bytes.Buffer{}); code != 0 {
		t.Fatal("parallel failed")
	}
	if seq.String() != par.String() {
		t.Fatal("parallel output differs from sequential")
	}
}

func TestRunJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "EX1", "-json"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var results []map[string]any
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 || results[0]["id"] != "EX1" || results[0]["ok"] != true {
		t.Fatalf("unexpected results: %v", results)
	}
	if !strings.Contains(results[0]["output"].(string), "rewriting") {
		t.Fatal("output missing")
	}
}
