package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestRewriteExample2(t *testing.T) {
	out, _, code := runCmd(t,
		"-query", "a·(b·a+c)*",
		"-view", "e1=a", "-view", "e2=a·c*·b", "-view", "e3=c")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"rewriting = e2*·e1·e3*", "exact     = true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRewriteNonExactShowsWitness(t *testing.T) {
	out, _, code := runCmd(t,
		"-query", "a·(b·a+c)*",
		"-view", "e1=a", "-view", "e2=a·c*·b")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "exact     = false") || !strings.Contains(out, "witness   = a·c") {
		t.Fatalf("missing witness:\n%s", out)
	}
}

func TestRewriteDOT(t *testing.T) {
	out, _, code := runCmd(t, "-query", "a", "-view", "e=a", "-dot")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{`digraph "Ad"`, `digraph "Aprime"`, `digraph "R"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
}

func TestRewritePartialFlag(t *testing.T) {
	out, _, code := runCmd(t, "-query", "a·(b+c)", "-view", "q1=a", "-view", "q2=b", "-partial")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "add elementary views [c]") {
		t.Fatalf("partial search missing:\n%s", out)
	}
}

func TestRewritePossibleFlag(t *testing.T) {
	out, _, code := runCmd(t, "-query", "a·(b+c)", "-view", "q1=a", "-view", "q2=b", "-possible")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"possibility rewriting = q1·q2", "containing rewriting exists = false", "uncoverable word of L(E0) = a·c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRewriteCostFlag(t *testing.T) {
	out, _, code := runCmd(t, "-query", "a·b",
		"-view", "vBig=a·b", "-view", "vA=a", "-view", "vB=b",
		"-cost", "vBig=100")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "cost-guided pruning keeps views [vA vB]") {
		t.Fatalf("pruning output wrong:\n%s", out)
	}
	if _, _, code := runCmd(t, "-query", "a", "-view", "e=a", "-cost", "e=notanumber"); code != 2 {
		t.Fatal("bad cost weight should exit 2")
	}
}

func TestRewriteErrors(t *testing.T) {
	if _, _, code := runCmd(t); code != 2 {
		t.Fatal("missing -query should exit 2")
	}
	if _, stderr, code := runCmd(t, "-query", "(("); code != 1 || !strings.Contains(stderr, "rewrite:") {
		t.Fatalf("bad query: code=%d stderr=%q", code, stderr)
	}
	if _, _, code := runCmd(t, "-query", "a", "-view", "noequals"); code != 2 {
		t.Fatal("bad view should fail flag parsing")
	}
	if _, _, code := runCmd(t, "-query", "a", "-view", "e=a", "-view", "e=b"); code != 2 {
		t.Fatal("duplicate view should fail")
	}
}

func TestRewriteExplainFlag(t *testing.T) {
	out, _, code := runCmd(t, "-query", "a·(b·a+c)*",
		"-view", "e1=a", "-view", "e2=a·c*·b", "-view", "e3=c",
		"-explain", "e1 e2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "e1·e2 ∉ L(R): expansion a·a·b escapes L(E0)") {
		t.Fatalf("explain output wrong:\n%s", out)
	}
	out, _, _ = runCmd(t, "-query", "a·b", "-view", "e1=a", "-view", "e2=b", "-explain", "e1 e2")
	if !strings.Contains(out, "e1·e2 ∈ L(R)") {
		t.Fatalf("explain membership wrong:\n%s", out)
	}
	out, _, _ = runCmd(t, "-query", "a", "-view", "e=a", "-explain", "nosuch")
	if !strings.Contains(out, "unknown view name") {
		t.Fatalf("explain unknown-view wrong:\n%s", out)
	}
}

func TestRewriteMaxStatesExitsThree(t *testing.T) {
	_, errOut, code := runCmd(t,
		"-query", "(a+b)*·a·(a+b)·(a+b)·(a+b)·(a+b)",
		"-view", "e1=a", "-view", "e2=b",
		"-max-states", "5")
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "resource budget exhausted in automata.determinize") {
		t.Fatalf("diagnostic must name the exhausted stage:\n%s", errOut)
	}
}

func TestRewriteTimeoutExitsThree(t *testing.T) {
	_, errOut, code := runCmd(t,
		"-query", "a·(b+c)", "-view", "q1=a", "-view", "q2=b",
		"-timeout", "1ns")
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "deadline exceeded") {
		t.Fatalf("diagnostic wrong:\n%s", errOut)
	}
}

func TestRewriteGovernedRunSucceeds(t *testing.T) {
	out, _, code := runCmd(t,
		"-query", "a·(b+c)", "-view", "q1=a", "-view", "q2=b", "-view", "q3=c",
		"-max-states", "100000", "-timeout", "1m")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "exact     = true") {
		t.Fatalf("governed run output wrong:\n%s", out)
	}
}
