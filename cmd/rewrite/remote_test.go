package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	regexrwclient "regexrw/client"
)

// stubPlanServer answers /v1/rewrite with a canned handler, standing
// in for a serve replica.
func stubPlanServer(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rewrite", h)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func planJSON(w http.ResponseWriter, resp regexrwclient.PlanResponse) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func TestRewriteServerMode(t *testing.T) {
	var got regexrwclient.RewriteRequest
	ts := stubPlanServer(t, func(w http.ResponseWriter, r *http.Request) {
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Error(err)
		}
		planJSON(w, regexrwclient.PlanResponse{
			Key: "k", Rewriting: "e2*·e1·e3*", Exact: true, Verdict: "yes",
		})
	})
	out, _, code := runCmd(t,
		"-server", ts.URL,
		"-query", "a·(b·a+c)*",
		"-view", "e1=a", "-view", "e2=a·c*·b", "-view", "e3=c")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"E0        = a·(b·a+c)*", "rewriting = e2*·e1·e3*", "exact     = true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if got.Query != "a·(b·a+c)*" || got.Views["e2"] != "a·c*·b" {
		t.Fatalf("server saw request %+v", got)
	}
}

func TestRewriteServerModeWitness(t *testing.T) {
	ts := stubPlanServer(t, func(w http.ResponseWriter, _ *http.Request) {
		planJSON(w, regexrwclient.PlanResponse{
			Key: "k", Rewriting: "e1", Exact: false, Verdict: "no", Witness: []string{"a", "c"},
		})
	})
	out, _, code := runCmd(t, "-server", ts.URL, "-query", "a·c", "-view", "e1=a")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "exact     = false") || !strings.Contains(out, "witness   = a·c") {
		t.Fatalf("missing witness:\n%s", out)
	}
}

func TestRewriteServerModeResourceExit(t *testing.T) {
	ts := stubPlanServer(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(regexrwclient.ErrorEnvelope{Error: regexrwclient.ErrorDetail{
			V: regexrwclient.EnvelopeVersion, Code: regexrwclient.CodeBudgetExceeded,
			Message: "budget", Stage: "determinize", Resource: "states", Limit: 10, Used: 11,
		}})
	})
	_, errOut, code := runCmd(t, "-server", ts.URL, "-query", "a", "-view", "e1=a")
	if code != 3 {
		t.Fatalf("exit %d, want 3 for budget_exceeded", code)
	}
	if !strings.Contains(errOut, "resource budget exhausted in determinize") {
		t.Fatalf("stderr: %s", errOut)
	}
}

func TestRewriteServerModeUnreachable(t *testing.T) {
	_, errOut, code := runCmd(t, "-server", "127.0.0.1:1", "-query", "a", "-view", "e1=a")
	if code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, errOut)
	}
}

func TestRewriteServerModeRejectsLocalOnlyFlags(t *testing.T) {
	for _, extra := range [][]string{
		{"-dot"},
		{"-explain", "e1"},
		{"-possible"},
		{"-cost", "e1=2"},
	} {
		args := append([]string{"-server", "localhost:1", "-query", "a", "-view", "e1=a"}, extra...)
		_, errOut, code := runCmd(t, args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2", extra, code)
		}
		if !strings.Contains(errOut, "cannot be combined with -server") {
			t.Fatalf("%v: stderr: %s", extra, errOut)
		}
	}
}

func TestRewriteServerModePartial(t *testing.T) {
	ts := stubPlanServer(t, func(w http.ResponseWriter, _ *http.Request) {
		planJSON(w, regexrwclient.PlanResponse{
			Key: "k", Rewriting: "e1", Exact: false, Verdict: "no", Witness: []string{"a", "c"},
			Partial: &regexrwclient.PartialResult{
				Exact: true, Added: []string{"c"}, Rewriting: "e1·vc*",
			},
		})
	})
	out, _, code := runCmd(t, "-server", ts.URL, "-partial", "-query", "a·c*", "-view", "e1=a")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "partial rewriting: add elementary views [c]") ||
		!strings.Contains(out, "extended rewriting = e1·vc* (exact)") {
		t.Fatalf("missing partial block:\n%s", out)
	}
}
