// Command rewrite computes the Σ_E-maximal rewriting of a regular
// expression in terms of views (Section 2 of Calvanese, De Giacomo,
// Lenzerini, Vardi, PODS 1999).
//
// Usage:
//
//	rewrite -query 'a·(b·a+c)*' -view 'e1=a' -view 'e2=a·c*·b' -view 'e3=c' [-dot] [-partial]
//
// It prints the rewriting as a regular expression over the view names,
// whether it is exact (with a witness word when it is not), and the
// emptiness diagnostics of Section 3.2. With -dot, the three automata
// of the construction (A_d, A', R) are emitted in Graphviz syntax.
// With -partial, a minimal set of elementary views making the
// rewriting exact is searched for (Section 4.3).
//
// With -server host[,host...], the request is answered through a
// running serve instance instead of compiling locally; several
// addresses route through the cluster-aware client straight to the
// replica owning the plan key. Flags needing the local automata
// (-dot, -explain, -possible, -cost) cannot be combined with -server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	regexrwclient "regexrw/client"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/cliobs"
	"regexrw/internal/core"
	"regexrw/internal/engine"
)

type viewFlags map[string]string

func (v viewFlags) String() string { return fmt.Sprint(map[string]string(v)) }

func (v viewFlags) Set(s string) error {
	name, expr, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=expression, got %q", s)
	}
	if _, dup := v[name]; dup {
		return fmt.Errorf("duplicate view %q", name)
	}
	v[name] = expr
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rewrite", flag.ContinueOnError)
	fs.SetOutput(stderr)
	query := fs.String("query", "", "regular expression E0 to rewrite (required)")
	views := viewFlags{}
	fs.Var(views, "view", "view definition name=expression (repeatable)")
	dot := fs.Bool("dot", false, "emit the construction's automata in Graphviz dot syntax")
	partial := fs.Bool("partial", false, "search for a minimal elementary-view extension making the rewriting exact")
	possible := fs.Bool("possible", false, "also compute the possibility (containing) rewriting")
	explain := fs.String("explain", "", "space-separated view word: report membership and, if rejected, an escaping expansion")
	costs := viewFlags{}
	fs.Var(costs, "cost", "view evaluation cost name=weight (repeatable); triggers cost-guided view pruning")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none); exceeding it exits 3")
	maxStates := fs.Int("max-states", 0, "cap on total materialized automaton states (0 = unlimited); exceeding it exits 3")
	server := fs.String("server", "", "answer through a running serve instance instead of compiling locally (comma-separated replica addresses route to the key's owner)")
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *query == "" {
		fmt.Fprintln(stderr, "rewrite: -query is required")
		fs.Usage()
		return 2
	}
	if *server != "" {
		// The remote plan response carries the rewriting and its
		// diagnostics, not the construction's automata: flags that need
		// them stay local-only.
		if *dot || *explain != "" || *possible || len(costs) > 0 {
			fmt.Fprintln(stderr, "rewrite: -dot, -explain, -possible and -cost need the local automata and cannot be combined with -server")
			return 2
		}
		return runServer(*server, regexrwclient.RewriteRequest{
			Query:     *query,
			Views:     views,
			Partial:   *partial,
			MaxStates: *maxStates,
			TimeoutMS: timeout.Milliseconds(),
		}, *timeout, stdout, stderr)
	}

	// The constructions are doubly exponential in the worst case
	// (Theorems 5 and 8), so both guards govern every stage through the
	// shared context.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *maxStates > 0 {
		ctx = budget.With(ctx, budget.New(budget.MaxStates(*maxStates)))
	}
	// The deferred finish writes the trace/metrics even when a stage
	// fails — a truncated trace of an exhausted run is the diagnostic.
	ctx, finishObs := obsFlags.Install(ctx, stderr)
	defer finishObs()

	inst, err := core.ParseInstance(*query, views)
	if err != nil {
		fmt.Fprintln(stderr, "rewrite:", err)
		return 1
	}

	// The compile runs through the engine, which shares the run's
	// context budget, deadline and observability; the -partial search
	// rides on the same plan.
	eng := engine.New()
	plan, err := eng.Rewrite(ctx, engine.Request{Instance: inst, Partial: *partial})
	if err != nil {
		return fail(stderr, err)
	}
	r := plan.Rewriting()
	fmt.Fprintf(stdout, "E0        = %s\n", inst.Query)
	for _, v := range inst.Views {
		fmt.Fprintf(stdout, "re(%s)%s = %s\n", v.Name, strings.Repeat(" ", max(0, 4-len(v.Name))), v.Expr)
	}
	fmt.Fprintf(stdout, "rewriting = %s\n", plan.Regex())

	report := plan.Exactness()
	if report.Verdict == core.ExactUnknown && report.Reason != nil {
		return fail(stderr, report.Reason)
	}
	exact := plan.IsExact()
	fmt.Fprintf(stdout, "exact     = %v\n", exact)
	if !exact {
		fmt.Fprintf(stdout, "witness   = %s   (in L(E0) but not in exp(L(R)))\n",
			automata.FormatWord(inst.Sigma(), report.Witness))
	}
	fmt.Fprintf(stdout, "Σ_E-empty = %v, Σ-empty = %v\n", r.IsEmpty(), r.IsSigmaEmpty())
	if w, ok := r.ShortestWord(); ok {
		fmt.Fprintf(stdout, "shortest  = %s\n", automata.FormatWord(inst.SigmaE(), w))
	}

	if *explain != "" {
		names := strings.Fields(*explain)
		if r.Accepts(names...) {
			fmt.Fprintf(stdout, "\n%s ∈ L(R): every expansion lies in L(E0)\n", strings.Join(names, "·"))
		} else if w, ok := r.ExplainRejection(names...); ok {
			fmt.Fprintf(stdout, "\n%s ∉ L(R): expansion %s escapes L(E0)\n",
				strings.Join(names, "·"), automata.FormatWord(inst.Sigma(), w))
		} else {
			fmt.Fprintf(stdout, "\n%s ∉ L(R): unknown view name in the word\n", strings.Join(names, "·"))
		}
	}

	if *dot {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, r.Ad.DOT("Ad"))
		fmt.Fprint(stdout, r.APrime.DOT("Aprime"))
		fmt.Fprint(stdout, r.Auto.Minimize().TrimPartial().DOT("R"))
	}

	if *partial && !exact {
		res := plan.Partial()
		if res == nil {
			fmt.Fprintln(stderr, "rewrite: partial: no result on the plan")
			return 1
		}
		if !res.Exact {
			if code := resourceExit(stderr, res.Reason); code != 0 {
				return code
			}
			fmt.Fprintln(stderr, "rewrite: partial:", res.Reason)
			return 1
		}
		fmt.Fprintf(stdout, "\npartial rewriting: add elementary views %v\n", res.Result.Added)
		fmt.Fprintf(stdout, "extended rewriting = %s (exact)\n", res.Result.Rewriting.Regex())
	}

	if *possible {
		p, err := core.PossibilityRewritingContext(ctx, inst)
		if err != nil {
			return fail(stderr, err)
		}
		containing, cex := p.IsContaining()
		fmt.Fprintf(stdout, "\npossibility rewriting = %s\n", p.Regex())
		fmt.Fprintf(stdout, "containing rewriting exists = %v\n", containing)
		if !containing {
			fmt.Fprintf(stdout, "uncoverable word of L(E0) = %s\n",
				automata.FormatWord(inst.Sigma(), cex))
		}
	}

	if len(costs) > 0 {
		viewCosts := core.ViewCosts{}
		for name, weight := range costs {
			var v float64
			if _, err := fmt.Sscanf(weight, "%g", &v); err != nil {
				fmt.Fprintf(stderr, "rewrite: bad -cost %s=%s\n", name, weight)
				return 2
			}
			viewCosts[name] = v
		}
		pruned, pr, err := core.PruneViewsContext(ctx, inst, viewCosts)
		if err != nil {
			if code := resourceExit(stderr, err); code != 0 {
				return code
			}
			fmt.Fprintln(stderr, "rewrite: prune:", err)
			return 1
		}
		names := make([]string, len(pruned.Views))
		for i, v := range pruned.Views {
			names[i] = v.Name
		}
		fmt.Fprintf(stdout, "\ncost-guided pruning keeps views %v\n", names)
		fmt.Fprintf(stdout, "pruned rewriting = %s (estimated cost %.1f)\n",
			pr.Regex(), pr.EstimatedCost(viewCosts))
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// resourceExit returns 3 with a one-line diagnostic naming the
// exhausted stage when err is a budget or deadline failure, and 0 for
// every other error.
func resourceExit(stderr io.Writer, err error) int {
	var ex *budget.ExceededError
	if errors.As(err, &ex) {
		fmt.Fprintf(stderr, "rewrite: resource budget exhausted in %s: used %d of %d %s\n",
			ex.Stage, ex.Used, ex.Limit, ex.Resource)
		return 3
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		fmt.Fprintf(stderr, "rewrite: deadline exceeded: %v\n", err)
		return 3
	}
	return 0
}

// fail reports err and picks the exit code: 3 for resource exhaustion,
// 1 otherwise.
func fail(stderr io.Writer, err error) int {
	if code := resourceExit(stderr, err); code != 0 {
		return code
	}
	fmt.Fprintln(stderr, "rewrite:", err)
	return 1
}
