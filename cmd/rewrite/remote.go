package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	regexrwclient "regexrw/client"
)

// runServer answers the request through a running serve instance (or
// cluster) instead of compiling locally: the same output, produced
// from the wire-level plan response. The client is cluster-aware — a
// comma-separated -server list routes each request straight to the
// replica owning its plan key.
func runServer(servers string, req regexrwclient.RewriteRequest, timeout time.Duration, stdout, stderr io.Writer) int {
	cl, err := regexrwclient.New(regexrwclient.ParseServers(servers))
	if err != nil {
		fmt.Fprintln(stderr, "rewrite:", err)
		return 2
	}
	// Parse locally first: the preamble needs the instance, and a parse
	// failure here is exactly the server's 400.
	inst, err := req.Instance()
	if err != nil {
		fmt.Fprintln(stderr, "rewrite:", err)
		return 1
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	resp, err := cl.Rewrite(ctx, req)
	if err != nil {
		return remoteFail(stderr, err)
	}

	fmt.Fprintf(stdout, "E0        = %s\n", inst.Query)
	for _, v := range inst.Views {
		fmt.Fprintf(stdout, "re(%s)%s = %s\n", v.Name, strings.Repeat(" ", max(0, 4-len(v.Name))), v.Expr)
	}
	fmt.Fprintf(stdout, "rewriting = %s\n", resp.Rewriting)
	fmt.Fprintf(stdout, "exact     = %v\n", resp.Exact)
	if !resp.Exact {
		fmt.Fprintf(stdout, "witness   = %s   (in L(E0) but not in exp(L(R)))\n", formatWireWord(resp.Witness))
	}
	fmt.Fprintf(stdout, "Σ_E-empty = %v, Σ-empty = %v\n", resp.Empty, resp.SigmaEmpty)
	if len(resp.ShortestWord) > 0 || !resp.Empty {
		fmt.Fprintf(stdout, "shortest  = %s\n", formatWireWord(resp.ShortestWord))
	}
	if resp.Degraded {
		fmt.Fprintln(stderr, "rewrite: note: answered in degraded mode (the key's owner replica was unreachable)")
	}

	if req.Partial && !resp.Exact {
		pr := resp.Partial
		if pr == nil {
			fmt.Fprintln(stderr, "rewrite: partial: no result in the response")
			return 1
		}
		if !pr.Exact {
			if pr.Stage != "" {
				fmt.Fprintf(stderr, "rewrite: partial: resource budget exhausted in %s\n", pr.Stage)
				return 3
			}
			fmt.Fprintln(stderr, "rewrite: partial: no exact extension found")
			return 1
		}
		fmt.Fprintf(stdout, "\npartial rewriting: add elementary views %v\n", pr.Added)
		fmt.Fprintf(stdout, "extended rewriting = %s (exact)\n", pr.Rewriting)
	}
	return 0
}

// formatWireWord renders a wire-level word the way the local path
// renders symbol words: ε for the empty word, symbols joined by "·".
func formatWireWord(w []string) string {
	if len(w) == 0 {
		return "ε"
	}
	return strings.Join(w, "·")
}

// remoteFail maps a client error onto the command's exit codes: the
// server's budget_exceeded, state_limit and deadline answers are the
// same resource exhaustion the local path exits 3 for; everything else
// (bad requests, unreachable cluster) is 1.
func remoteFail(stderr io.Writer, err error) int {
	var ae *regexrwclient.APIError
	if errors.As(err, &ae) {
		switch ae.Detail.Code {
		case regexrwclient.CodeBudgetExceeded:
			fmt.Fprintf(stderr, "rewrite: resource budget exhausted in %s: used %d of %d %s\n",
				ae.Detail.Stage, ae.Detail.Used, ae.Detail.Limit, ae.Detail.Resource)
			return 3
		case regexrwclient.CodeStateLimit, regexrwclient.CodeDeadline:
			fmt.Fprintf(stderr, "rewrite: %s\n", ae.Detail.Message)
			return 3
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "rewrite: deadline exceeded: %v\n", err)
		return 3
	}
	fmt.Fprintln(stderr, "rewrite:", err)
	return 1
}
