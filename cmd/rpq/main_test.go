package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixtures(t *testing.T) (graphPath, theoryPath string) {
	t.Helper()
	dir := t.TempDir()
	graphPath = filepath.Join(dir, "site.graph")
	theoryPath = filepath.Join(dir, "site.theory")
	graphData := `root rome romePage
root jerusalem jerusalemPage
romePage district trastevere
trastevere restaurant carlotta
jerusalemPage restaurant taami
`
	theoryData := `const rome jerusalem district restaurant
pred city rome jerusalem
`
	if err := os.WriteFile(graphPath, []byte(graphData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(theoryPath, []byte(theoryData), 0o644); err != nil {
		t.Fatal(err)
	}
	return graphPath, theoryPath
}

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestRPQDirectEvaluation(t *testing.T) {
	g, th := writeFixtures(t)
	out, _, code := runCmd(t,
		"-graph", g, "-theory", th,
		"-query", "c·any*·rest",
		"-formula", "c=city", "-formula", "any=true", "-formula", "rest==restaurant")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "direct answer: 2 pairs") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	for _, p := range []string{"root→carlotta", "root→taami"} {
		if !strings.Contains(out, p) {
			t.Fatalf("missing pair %s:\n%s", p, out)
		}
	}
}

func TestRPQRewriteThroughViews(t *testing.T) {
	g, th := writeFixtures(t)
	for _, method := range []string{"grounded", "direct"} {
		out, _, code := runCmd(t,
			"-graph", g, "-theory", th, "-method", method,
			"-query", "c·d*·rest",
			"-formula", "c=city", "-formula", "d==district", "-formula", "rest==restaurant",
			"-view", "vc:c", "-view", "vd:d", "-view", "vt:rest")
		if code != 0 {
			t.Fatalf("method %s: exit %d", method, code)
		}
		for _, want := range []string{"rewriting over views: vc·vd*·vt", "exact: true", "answer through views: 2 pairs"} {
			if !strings.Contains(out, want) {
				t.Fatalf("method %s: missing %q:\n%s", method, want, out)
			}
		}
	}
}

func TestRPQWithoutTheoryFile(t *testing.T) {
	g, _ := writeFixtures(t)
	out, _, code := runCmd(t,
		"-graph", g,
		"-query", "r", "-formula", "r==rome")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "direct answer: 1 pairs") {
		t.Fatalf("unexpected:\n%s", out)
	}
}

func TestRPQPartial(t *testing.T) {
	g, th := writeFixtures(t)
	out, _, code := runCmd(t,
		"-graph", g, "-theory", th, "-partial",
		"-query", "rome+dist",
		"-formula", "rome==rome", "-formula", "dist==district",
		"-view", "vr:rome")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "partial rewriting adds:") {
		t.Fatalf("partial search missing:\n%s", out)
	}
}

func TestRPQErrors(t *testing.T) {
	g, th := writeFixtures(t)
	if _, _, code := runCmd(t); code != 2 {
		t.Fatal("missing flags should exit 2")
	}
	if _, _, code := runCmd(t, "-graph", g, "-query", "x", "-method", "frob"); code != 2 {
		t.Fatal("bad method should exit 2")
	}
	if _, _, code := runCmd(t, "-graph", "/does/not/exist", "-query", "x", "-formula", "x=true"); code != 1 {
		t.Fatal("missing graph file should exit 1")
	}
	if _, _, code := runCmd(t, "-graph", g, "-theory", th, "-query", "undefinedFormula"); code != 1 {
		t.Fatal("undefined formula should exit 1")
	}
	if _, _, code := runCmd(t, "-graph", g, "-query", "x", "-formula", "x=true", "-view", "noColon"); code != 1 {
		t.Fatal("bad view syntax should exit 1")
	}
}

func TestRPQMaxStatesExitsThree(t *testing.T) {
	graphPath, theoryPath := writeFixtures(t)
	_, errOut, code := runCmd(t,
		"-graph", graphPath, "-theory", theoryPath,
		"-query", "any*·rest",
		"-formula", "any=true", "-formula", "rest==restaurant",
		"-view", "v:any*",
		"-max-states", "2")
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "resource budget exhausted in ") {
		t.Fatalf("diagnostic must name the exhausted stage:\n%s", errOut)
	}
}

func TestRPQTimeoutExitsThree(t *testing.T) {
	graphPath, theoryPath := writeFixtures(t)
	_, errOut, code := runCmd(t,
		"-graph", graphPath, "-theory", theoryPath,
		"-query", "any*·rest",
		"-formula", "any=true", "-formula", "rest==restaurant",
		"-view", "v:any*",
		"-timeout", "1ns")
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "deadline exceeded") {
		t.Fatalf("diagnostic wrong:\n%s", errOut)
	}
}
