// Command rpq evaluates and rewrites regular path queries over
// semi-structured databases (Section 4 of the paper).
//
// Usage:
//
//	rpq -graph site.graph -theory site.theory \
//	    -query 'cityRJ·any*·rest' \
//	    -formula 'cityRJ==rome | =jerusalem' -formula 'any=true' -formula 'rest==restaurant' \
//	    [-view 'vr:cityRJ' ...] [-method direct] [-partial]
//
// The graph file holds "from label to" triples; the theory file holds
// "const …" and "pred …" lines. Formulae are given as name=definition
// (note "==" when the definition itself starts with the elementary
// '='). Views reference formulae by name with expression syntax after
// a colon: -view 'name:expr'. Without views the query is evaluated
// directly; with views it is rewritten, checked for exactness, and
// answered through the views.
//
// With -server host[,host...], the rewriting is computed through a
// running serve instance instead of locally (the theory file is read
// here and shipped on the wire); several addresses route through the
// cluster-aware client straight to the replica owning the plan key.
// Graph answering (-graph) and -partial stay local-only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"regexrw/internal/budget"
	"regexrw/internal/cliobs"
	"regexrw/internal/core"
	"regexrw/internal/engine"
	"regexrw/internal/graph"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rpq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fail := func(err error) int {
		var ex *budget.ExceededError
		if errors.As(err, &ex) {
			fmt.Fprintf(stderr, "rpq: resource budget exhausted in %s: used %d of %d %s\n",
				ex.Stage, ex.Used, ex.Limit, ex.Resource)
			return 3
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintf(stderr, "rpq: deadline exceeded: %v\n", err)
			return 3
		}
		fmt.Fprintln(stderr, "rpq:", err)
		return 1
	}
	graphPath := fs.String("graph", "", "path to the graph file (required)")
	theoryPath := fs.String("theory", "", "path to the theory file (optional: defaults to equality-only over the graph's labels)")
	queryExpr := fs.String("query", "", "regular path query expression over formula names (required)")
	var formulaDefs, viewDefs multiFlag
	fs.Var(&formulaDefs, "formula", "formula definition name=definition (repeatable)")
	fs.Var(&viewDefs, "view", "view definition name:expression over formula names (repeatable)")
	methodName := fs.String("method", "grounded", "rewriting construction: grounded, direct or compressed")
	partial := fs.Bool("partial", false, "search for atomic/elementary views making the rewriting exact")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none); exceeding it exits 3")
	maxStates := fs.Int("max-states", 0, "cap on total materialized automaton states (0 = unlimited); exceeding it exits 3")
	server := fs.String("server", "", "compute the rewriting through a running serve instance instead of locally (comma-separated replica addresses route to the key's owner)")
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *server != "" {
		// The server is the plan service: it rewrites and checks
		// exactness but holds no graph, so graph answering and the
		// partial search stay local-only.
		if *queryExpr == "" {
			fmt.Fprintln(stderr, "rpq: -query is required")
			return 2
		}
		if len(viewDefs) == 0 {
			fmt.Fprintln(stderr, "rpq: -server needs at least one -view (the server computes rewritings)")
			return 2
		}
		if *graphPath != "" || *partial {
			fmt.Fprintln(stderr, "rpq: -graph and -partial need the local evaluator and cannot be combined with -server")
			return 2
		}
		formulas := map[string]string{}
		for _, def := range formulaDefs {
			name, body, ok := strings.Cut(def, "=")
			if !ok || name == "" {
				fmt.Fprintf(stderr, "rpq: bad -formula %q: want name=definition\n", def)
				return 1
			}
			formulas[name] = body
		}
		return runServer(remoteOptions{
			servers:    *server,
			query:      *queryExpr,
			theoryPath: *theoryPath,
			method:     *methodName,
			formulas:   formulas,
			viewDefs:   viewDefs,
			maxStates:  *maxStates,
			timeout:    *timeout,
		}, stdout, stderr)
	}

	if *graphPath == "" || *queryExpr == "" {
		fmt.Fprintln(stderr, "rpq: -graph and -query are required")
		fs.Usage()
		return 2
	}

	// Grounding multiplies every formula edge by its satisfying
	// constants and the rewriting is doubly exponential on top, so both
	// guards govern every stage through the shared context.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *maxStates > 0 {
		ctx = budget.With(ctx, budget.New(budget.MaxStates(*maxStates)))
	}
	// Deferred so a failed run still leaves its partial trace/metrics.
	ctx, finishObs := obsFlags.Install(ctx, stderr)
	defer finishObs()

	var method rpq.Method
	switch *methodName {
	case "grounded":
		method = rpq.Grounded
	case "direct":
		method = rpq.Direct
	case "compressed":
		method = rpq.Compressed
	default:
		fmt.Fprintf(stderr, "rpq: unknown -method %q\n", *methodName)
		return 2
	}

	// Theory: from file, or the trivial equality theory over the labels
	// found in the graph.
	var tt *theory.Interpretation
	if *theoryPath != "" {
		f, err := os.Open(*theoryPath)
		if err != nil {
			return fail(err)
		}
		tt, err = theory.Read(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	} else {
		tt = theory.New()
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		return fail(err)
	}
	db, err := graph.Read(gf, tt.Domain())
	gf.Close()
	if err != nil {
		return fail(err)
	}

	formulas := map[string]string{}
	for _, def := range formulaDefs {
		name, body, ok := strings.Cut(def, "=")
		if !ok || name == "" {
			return fail(fmt.Errorf("bad -formula %q: want name=definition", def))
		}
		formulas[name] = body
	}
	q0, err := rpq.ParseQuery(*queryExpr, formulas)
	if err != nil {
		return fail(err)
	}

	answers := q0.Answer(tt, db)
	fmt.Fprintf(stdout, "query: %s\n", q0)
	fmt.Fprintf(stdout, "direct answer: %d pairs\n", len(answers))
	for _, p := range db.PairNames(answers) {
		fmt.Fprintln(stdout, " ", p)
	}

	if len(viewDefs) == 0 {
		return 0
	}

	var views []rpq.View
	for _, def := range viewDefs {
		name, expr, ok := strings.Cut(def, ":")
		if !ok || name == "" {
			return fail(fmt.Errorf("bad -view %q: want name:expression", def))
		}
		vq, err := rpq.ParseQuery(expr, formulas)
		if err != nil {
			return fail(fmt.Errorf("view %s: %w", name, err))
		}
		views = append(views, rpq.View{Name: name, Query: vq})
	}

	// The rewriting compiles through the engine, sharing the run's
	// context budget, deadline and observability; the plan carries the
	// exactness report alongside the rewriting.
	eng := engine.New()
	plan, err := eng.RewriteRPQ(ctx, engine.RPQRequest{
		Query: q0, Views: views, Theory: tt, Method: method,
	})
	if err != nil {
		return fail(err)
	}
	r := plan.RPQ()
	fmt.Fprintf(stdout, "\nrewriting over views: %s\n", r.RegexOverViews())
	report := plan.Exactness()
	if report.Verdict == core.ExactUnknown && report.Reason != nil {
		return fail(report.Reason)
	}
	exact := plan.IsExact()
	fmt.Fprintf(stdout, "exact: %v\n", exact)

	viaViews := r.AnswerUsingViews(db)
	fmt.Fprintf(stdout, "answer through views: %d pairs\n", len(viaViews))
	for _, p := range db.PairNames(viaViews) {
		fmt.Fprintln(stdout, " ", p)
	}

	if *partial && !exact {
		res, err := rpq.PartialRewriteContext(ctx, q0, views, tt, rpq.DefaultCandidates(tt), method)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\npartial rewriting adds:\n")
		for _, c := range res.Added {
			kind := "atomic"
			if c.Kind == rpq.ElementaryView {
				kind = "elementary"
			}
			fmt.Fprintf(stdout, "  %s view %s\n", kind, c.Name)
		}
		fmt.Fprintf(stdout, "extended rewriting = %s (exact)\n", res.Rewriting.RegexOverViews())
	}
	return 0
}
