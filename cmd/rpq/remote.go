package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	regexrwclient "regexrw/client"
	"regexrw/internal/theory"
)

// remoteOptions carries the parsed flags the -server mode needs.
type remoteOptions struct {
	servers    string
	query      string
	theoryPath string
	method     string
	formulas   map[string]string
	viewDefs   []string
	maxStates  int
	timeout    time.Duration
}

// runServer computes the rewriting through a running serve instance
// (or cluster) instead of locally. The server side is the plan service
// — it rewrites and checks exactness but holds no graph — so only the
// rewriting part of the command travels; graph answering stays local.
func runServer(opts remoteOptions, stdout, stderr io.Writer) int {
	cl, err := regexrwclient.New(regexrwclient.ParseServers(opts.servers))
	if err != nil {
		fmt.Fprintln(stderr, "rpq:", err)
		return 2
	}
	req := regexrwclient.RPQRequest{
		Query:     opts.query,
		Formulas:  opts.formulas,
		Method:    opts.method,
		MaxStates: opts.maxStates,
		TimeoutMS: opts.timeout.Milliseconds(),
	}
	if opts.theoryPath != "" {
		f, err := os.Open(opts.theoryPath)
		if err != nil {
			fmt.Fprintln(stderr, "rpq:", err)
			return 1
		}
		tt, err := theory.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "rpq:", err)
			return 1
		}
		req.Theory = regexrwclient.TheoryWire(tt)
	}
	for _, def := range opts.viewDefs {
		name, expr, ok := strings.Cut(def, ":")
		if !ok || name == "" {
			fmt.Fprintf(stderr, "rpq: bad -view %q: want name:expression\n", def)
			return 1
		}
		req.Views = append(req.Views, regexrwclient.RPQView{Name: name, Query: expr})
	}

	ctx := context.Background()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	resp, err := cl.RPQ(ctx, req)
	if err != nil {
		return remoteFail(stderr, err)
	}
	fmt.Fprintf(stdout, "query: %s\n", opts.query)
	fmt.Fprintf(stdout, "rewriting over views: %s\n", resp.Rewriting)
	fmt.Fprintf(stdout, "exact: %v\n", resp.Exact)
	if resp.Degraded {
		fmt.Fprintln(stderr, "rpq: note: answered in degraded mode (the key's owner replica was unreachable)")
	}
	return 0
}

// remoteFail maps a client error onto the command's exit codes,
// mirroring the local fail closure: resource exhaustion and deadlines
// are 3, everything else 1.
func remoteFail(stderr io.Writer, err error) int {
	var ae *regexrwclient.APIError
	if errors.As(err, &ae) {
		switch ae.Detail.Code {
		case regexrwclient.CodeBudgetExceeded:
			fmt.Fprintf(stderr, "rpq: resource budget exhausted in %s: used %d of %d %s\n",
				ae.Detail.Stage, ae.Detail.Used, ae.Detail.Limit, ae.Detail.Resource)
			return 3
		case regexrwclient.CodeStateLimit, regexrwclient.CodeDeadline:
			fmt.Fprintf(stderr, "rpq: %s\n", ae.Detail.Message)
			return 3
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "rpq: deadline exceeded: %v\n", err)
		return 3
	}
	fmt.Fprintln(stderr, "rpq:", err)
	return 1
}
