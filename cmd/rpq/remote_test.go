package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	regexrwclient "regexrw/client"
)

func stubRPQServer(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rpq", h)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRPQServerMode(t *testing.T) {
	theoryFile := filepath.Join(t.TempDir(), "site.theory")
	if err := os.WriteFile(theoryFile, []byte("const rome jerusalem\npred city rome jerusalem\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got regexrwclient.RPQRequest
	ts := stubRPQServer(t, func(w http.ResponseWriter, r *http.Request) {
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Error(err)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(regexrwclient.PlanResponse{
			Key: "k", Rewriting: "vc", Exact: true, Verdict: "yes",
		})
	})
	out, _, code := runCmd(t,
		"-server", ts.URL,
		"-theory", theoryFile,
		"-query", "c",
		"-formula", "c=city",
		"-view", "vc:c",
		"-method", "direct")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "rewriting over views: vc") || !strings.Contains(out, "exact: true") {
		t.Fatalf("output:\n%s", out)
	}
	if got.Query != "c" || got.Method != "direct" || got.Formulas["c"] != "city" {
		t.Fatalf("server saw request %+v", got)
	}
	if len(got.Views) != 1 || got.Views[0].Name != "vc" || got.Views[0].Query != "c" {
		t.Fatalf("server saw views %+v", got.Views)
	}
	if got.Theory == nil || len(got.Theory.Constants) != 2 ||
		len(got.Theory.Predicates["city"]) != 2 {
		t.Fatalf("server saw theory %+v", got.Theory)
	}
}

func TestRPQServerModeResourceExit(t *testing.T) {
	ts := stubRPQServer(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		_ = json.NewEncoder(w).Encode(regexrwclient.ErrorEnvelope{Error: regexrwclient.ErrorDetail{
			V: regexrwclient.EnvelopeVersion, Code: regexrwclient.CodeDeadline, Message: "context deadline exceeded",
		}})
	})
	_, errOut, code := runCmd(t, "-server", ts.URL, "-query", "c", "-formula", "c=true", "-view", "v:c")
	if code != 3 {
		t.Fatalf("exit %d, want 3 for deadline: %s", code, errOut)
	}
}

func TestRPQServerModeFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no query", []string{"-server", "localhost:1"}, "-query is required"},
		{"no views", []string{"-server", "localhost:1", "-query", "c"}, "needs at least one -view"},
		{"graph", []string{"-server", "localhost:1", "-query", "c", "-view", "v:c", "-graph", "g"}, "cannot be combined with -server"},
		{"partial", []string{"-server", "localhost:1", "-query", "c", "-view", "v:c", "-partial"}, "cannot be combined with -server"},
	}
	for _, tc := range cases {
		_, errOut, code := runCmd(t, tc.args...)
		if code != 2 {
			t.Fatalf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(errOut, tc.want) {
			t.Fatalf("%s: stderr %q missing %q", tc.name, errOut, tc.want)
		}
	}
}
