package regexrw

// Observability overhead guards. The contract (docs/OBSERVABILITY.md)
// is two-sided: with no tracer and no registry installed the
// instrumentation on the hot paths costs zero allocations, and with
// both installed the pipeline stays within the in-run 2x guard that
// internal/bench enforces via the EX2Observed family.

import (
	"context"
	"testing"

	"regexrw/internal/automata"
	"regexrw/internal/obs"
	"regexrw/internal/workload"
)

// BenchmarkTracerOff measures the per-stage observability sequence the
// THM5 subset construction executes when tracing is disabled: span
// start, state/transition/cache charges, span end. Run with -benchmem;
// the published contract is 0 allocs/op, and TestTracerOffPipelineAllocs
// fails the suite if it ever stops holding.
func BenchmarkTracerOff(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sctx, span := obs.StartSpan(ctx, "automata.determinize")
		span.AddStates(16)
		span.AddTransitions(32)
		span.AddCache(4, 5)
		span.End()
		if obs.Enabled(sctx) {
			b.Fatal("obs unexpectedly enabled")
		}
	}
}

// BenchmarkTHM5Traced times the real THM5 determinization hot path
// with observability off and on; the "on" variant includes building
// and exporting the trace, so the pair bounds the whole-run overhead.
func BenchmarkTHM5Traced(b *testing.B) {
	inst := workload.DetBlowupFamily(8)
	qnfa := inst.Query.ToNFA(inst.Sigma())
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := automata.DeterminizeContext(context.Background(), qnfa); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := NewTracer()
			ctx := WithMetrics(WithTracer(context.Background(), tr), NewMetrics())
			if _, err := automata.DeterminizeContext(ctx, qnfa); err != nil {
				b.Fatal(err)
			}
			if tr.Export() == nil {
				b.Fatal("no trace exported")
			}
		}
	})
}

// TestTracerOffPipelineAllocs pins BenchmarkTracerOff's contract so CI
// fails, rather than drifts, when the disabled path starts allocating:
// the exact obs call sequence of a determinize stage must cost nothing
// without a tracer or registry on the context.
func TestTracerOffPipelineAllocs(t *testing.T) {
	ctx := context.Background()
	got := testing.AllocsPerRun(200, func() {
		sctx, span := obs.StartSpan(ctx, "automata.determinize")
		span.AddStates(16)
		span.AddTransitions(32)
		span.AddCache(4, 5)
		span.End()
		obs.Do(sctx, func(context.Context) {})
	})
	if got != 0 {
		t.Fatalf("disabled obs path allocates %v allocs/op, want 0", got)
	}
}
