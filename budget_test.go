package regexrw

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestWithBudgetGovernsRewriting: the doc-comment usage pattern — a
// state cap on a governed run trips with a typed *BudgetExceeded
// naming the stage.
func TestWithBudgetGovernsRewriting(t *testing.T) {
	inst, err := ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b", "q3": "c"})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBudget(2, 0)
	_, err = MaximalRewritingContext(WithBudget(context.Background(), b), inst)
	var ex *BudgetExceeded
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *BudgetExceeded", err)
	}
	if ex.Stage == "" || ex.Used <= ex.Limit {
		t.Fatalf("BudgetExceeded = %+v", ex)
	}
	// With room to run, the same governed call succeeds and the meter
	// reports what was spent.
	big := NewBudget(100000, 0)
	if _, err := MaximalRewritingContext(WithBudget(context.Background(), big), inst); err != nil {
		t.Fatal(err)
	}
	if big.States() == 0 {
		t.Fatal("governed run charged no states")
	}
}

// TestWithBudgetDeadline: a context deadline composes with the budget.
func TestWithBudgetDeadline(t *testing.T) {
	inst, err := ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	_, err = MaximalRewritingContext(WithBudget(ctx, NewBudget(0, 0)), inst)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestTryExactnessFacade: the three-valued verdict is reachable from
// the facade types.
func TestTryExactnessFacade(t *testing.T) {
	inst, err := ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := MaximalRewritingContext(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if rep := r.TryExactness(context.Background()); rep.Verdict != ExactNo {
		t.Fatalf("Verdict = %v, want no", rep.Verdict)
	}
	rep := r.TryExactness(WithBudget(context.Background(), NewBudget(1, 0)))
	if rep.Verdict != ExactUnknown || rep.Reason == nil {
		t.Fatalf("report = %+v, want unknown with a reason", rep)
	}
}

// TestPartialRewritingAnytimeFacade: the anytime search degrades to a
// sound result instead of failing when governed tightly.
func TestPartialRewritingAnytimeFacade(t *testing.T) {
	inst, err := ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartialRewritingAnytime(context.Background(), inst)
	if err != nil || !res.Exact {
		t.Fatalf("ungoverned run: res = %+v, err = %v", res, err)
	}
}
